//! End-to-end tests of the `gcx` binary: every subcommand, both success
//! and failure paths.

use std::io::Write;
use std::process::{Command, Stdio};

fn gcx_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gcx"))
}

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("gcx-cli-test-{}-{name}", std::process::id()));
    std::fs::write(&path, content).unwrap();
    path
}

#[test]
fn run_inline_query() {
    let doc = write_temp("run.xml", "<bib><book><title>T</title></book></bib>");
    let out = gcx_bin()
        .args(["run", "-e", "for $b in /bib/book return $b/title"])
        .arg(&doc)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim(),
        "<title>T</title>"
    );
}

#[test]
fn run_with_stats_and_engines() {
    let doc = write_temp("engines.xml", "<l><i>1</i><i>2</i></l>");
    for engine in ["gcx", "projection", "full", "dom"] {
        let out = gcx_bin()
            .args(["run", "-e", "for $i in /l/i return $i/text()"])
            .arg(&doc)
            .args(["--engine", engine, "--stats"])
            .output()
            .unwrap();
        assert!(out.status.success(), "engine {engine}");
        assert_eq!(
            String::from_utf8_lossy(&out.stdout).trim(),
            "12",
            "engine {engine}"
        );
        assert!(
            !out.stderr.is_empty(),
            "--stats must print to stderr ({engine})"
        );
    }
}

#[test]
fn run_reads_query_from_file() {
    let qf = write_temp("query.xq", "for $i in /l/i return $i");
    let doc = write_temp("qfile.xml", "<l><i>x</i></l>");
    let out = gcx_bin().arg("run").arg(&qf).arg(&doc).output().unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "<i>x</i>");
}

#[test]
fn run_reads_stdin_with_dash() {
    let mut child = gcx_bin()
        .args(["run", "-e", "for $i in /l/i return $i/text()", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"<l><i>7</i></l>")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "7");
}

#[test]
fn explain_prints_roles() {
    let out = gcx_bin()
        .args(["explain", "-e", "for $b in /bib/book return $b/title"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("r2: /bib/book"), "{text}");
    assert!(text.contains("signOff($b, r2)"), "{text}");
    // The report carries both the direct lowering and the optimized
    // program, with the optimizer's per-pass diff between them.
    assert!(
        text.contains("== Compiled program (gcx-ir, unoptimized) =="),
        "{text}"
    );
    assert!(text.contains("== Optimizer passes =="), "{text}");
    assert!(text.contains("step-fusion"), "{text}");
    assert!(text.contains("cost estimate:"), "{text}");
    assert!(text.contains("== Optimized program =="), "{text}");
    assert!(text.contains("for $b in p"), "{text}");
}

#[test]
fn explain_matches_golden_listing() {
    // Golden file for the paper's running example: roles, rewritten query
    // AND the full gcx-ir program listing (instructions, conditions, path
    // plans, step table). Regenerate with
    //   gcx explain crates/cli/tests/golden/paper.xq \
    //     > crates/cli/tests/golden/explain_paper.txt
    // after an intentional lowering change.
    let query = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/paper.xq");
    let golden = include_str!("golden/explain_paper.txt");
    let out = gcx_bin().args(["explain", query]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        golden,
        "explain output drifted from the golden listing"
    );
}

#[test]
fn analyze_matches_golden_text() {
    // Golden file for `gcx analyze` on the paper's running example:
    // class, symbolic bound, per-binding table, lints. Regenerate with
    //   gcx analyze crates/cli/tests/golden/paper.xq \
    //     > crates/cli/tests/golden/analyze_paper.txt
    // after an intentional classifier change.
    let query = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/paper.xq");
    let golden = include_str!("golden/analyze_paper.txt");
    let out = gcx_bin().args(["analyze", query]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        golden,
        "analyze output drifted from the golden text"
    );
}

#[test]
fn analyze_flags_a_join_and_emits_json() {
    let join = "for $p in /site/people/person return \
                  for $t in /site/closed_auctions/closed_auction return \
                    if ($t/buyer/@person = $p/@id) then $p/name else ()";
    let out = gcx_bin().args(["analyze", "-e", join]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("streamability: document"), "{text}");
    assert!(text.contains("[warning] GCX-JOIN"), "{text}");

    let out = gcx_bin()
        .args(["analyze", "-e", join, "--json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"class\":\"document\""), "{json}");
    assert!(json.contains("\"code\":\"GCX-JOIN\""), "{json}");
}

#[test]
fn stats_json_carries_the_analysis_block() {
    let doc = write_temp("analysis.xml", "<bib><book><title>T</title></book></bib>");
    let out = gcx_bin()
        .args(["run", "-e", "for $b in /bib/book return $b/title"])
        .arg(&doc)
        .args(["--stats-json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let json = String::from_utf8_lossy(&out.stderr);
    assert!(
        json.contains("\"analysis\":{\"class\":\"per-item\""),
        "{json}"
    );
    assert!(json.contains("\"bound\":"), "{json}");
}

#[test]
fn trace_emits_csv() {
    let doc = write_temp("trace.xml", "<l><i/><i/></l>");
    let out = gcx_bin()
        .args(["trace", "-e", "for $i in /l/i return 'x'"])
        .arg(&doc)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("tokens,buffered_nodes"), "{text}");
    assert_eq!(text.lines().count(), 7, "header + 6 tokens: {text}");
}

#[test]
fn generate_then_validate_then_query() {
    let doc = std::env::temp_dir().join(format!("gcx-cli-gen-{}.xml", std::process::id()));
    let out = gcx_bin()
        .args(["generate", "1"])
        .arg(&doc)
        .args(["--seed", "7"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(doc.metadata().unwrap().len() > 100_000);

    let out = gcx_bin().arg("validate").arg(&doc).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("well-formed"));

    let out = gcx_bin()
        .args([
            "run",
            "-e",
            "for $p in /site/people/person return if ($p/@id = 'person0') then $p/name else ()",
        ])
        .arg(&doc)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("<name>"));
    let _ = std::fs::remove_file(&doc);
}

#[test]
fn validate_rejects_malformed() {
    let doc = write_temp("bad.xml", "<a><b></a>");
    let out = gcx_bin().arg("validate").arg(&doc).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("not well-formed"));
}

#[test]
fn bad_query_fails_with_message() {
    let doc = write_temp("bq.xml", "<a/>");
    let out = gcx_bin()
        .args(["run", "-e", "for $x in"])
        .arg(&doc)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("gcx:"));
}

#[test]
fn unknown_command_fails() {
    let out = gcx_bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn help_prints_usage() {
    let out = gcx_bin().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn multi_batch_matches_individual_runs() {
    let doc = write_temp(
        "multi.xml",
        "<bib><book><title>T1</title><price>9</price></book><article><title>T2</title></article></bib>",
    );
    let batch = write_temp(
        "multi.xq",
        "%% titles of books\n\
         for $b in /bib/book return $b/title\n\
         %% whole articles\n\
         for $a in /bib/article return $a\n\
         %% prices as text\n\
         for $p in /bib/book/price return $p/text()\n",
    );
    let multi = gcx_bin()
        .arg("multi")
        .arg(&batch)
        .arg(&doc)
        .output()
        .unwrap();
    assert!(
        multi.status.success(),
        "{}",
        String::from_utf8_lossy(&multi.stderr)
    );
    let mut expected = String::new();
    for q in [
        "for $b in /bib/book return $b/title",
        "for $a in /bib/article return $a",
        "for $p in /bib/book/price return $p/text()",
    ] {
        let single = gcx_bin().args(["run", "-e", q]).arg(&doc).output().unwrap();
        assert!(single.status.success());
        expected.push_str(&String::from_utf8_lossy(&single.stdout));
    }
    assert_eq!(String::from_utf8_lossy(&multi.stdout), expected);
}

#[test]
fn multi_out_dir_and_stats() {
    let doc = write_temp("multi-od.xml", "<l><i>1</i><i>2</i></l>");
    let batch = write_temp(
        "multi-od.xq",
        "for $i in /l/i return $i/text()\n%%\n<n>{ count(/l/i) }</n>\n",
    );
    let dir = std::env::temp_dir().join(format!("gcx-multi-out-{}", std::process::id()));
    let out = gcx_bin()
        .arg("multi")
        .arg(&batch)
        .arg(&doc)
        .args(["--out-dir", dir.to_str().unwrap(), "--stats"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(out.stdout.is_empty(), "--out-dir leaves stdout empty");
    assert_eq!(
        std::fs::read_to_string(dir.join("query-00.out")).unwrap(),
        "12"
    );
    assert_eq!(
        std::fs::read_to_string(dir.join("query-01.out")).unwrap(),
        "<n>2</n>"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("share factor"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn multi_stats_json_is_machine_readable() {
    let doc = write_temp("multi-json.xml", "<l><i>1</i></l>");
    let batch = write_temp("multi-json.xq", "for $i in /l/i return $i/text()\n");
    let out = gcx_bin()
        .arg("multi")
        .arg(&batch)
        .arg(&doc)
        .arg("--stats-json")
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    let json = stderr.trim();
    assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    for key in [
        "\"tokens\"",
        "\"share_factor\"",
        "\"per_query\"",
        "\"buffer\"",
    ] {
        assert!(json.contains(key), "missing {key}: {json}");
    }
}

#[test]
fn run_stats_json_is_machine_readable() {
    let doc = write_temp("rsj.xml", "<l><i>1</i></l>");
    let out = gcx_bin()
        .args(["run", "-e", "for $i in /l/i return $i/text()"])
        .arg(&doc)
        .arg("--stats-json")
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let json = stderr.trim();
    assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    for key in [
        "\"tokens\"",
        "\"output_bytes\"",
        "\"buffer\"",
        "\"peak_live\"",
    ] {
        assert!(json.contains(key), "missing {key}: {json}");
    }
}

#[test]
fn multi_empty_batch_file_fails() {
    let doc = write_temp("meb.xml", "<a/>");
    let batch = write_temp("meb.xq", "%% only comments\n");
    let out = gcx_bin()
        .arg("multi")
        .arg(&batch)
        .arg(&doc)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no queries"));
}

#[test]
fn run_respects_max_buffer_bytes() {
    let doc = write_temp("cap.xml", "<bib><book><title>T</title></book></bib>");
    // A budget smaller than one node: typed failure, exit code 1.
    let out = gcx_bin()
        .args(["run", "-e", "for $b in /bib/book return $b/title"])
        .arg(&doc)
        .args(["--max-buffer-bytes", "8"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("buffer limit exceeded"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A generous budget (with a suffix) changes nothing and shows up in
    // the stats JSON.
    let out = gcx_bin()
        .args(["run", "-e", "for $b in /bib/book return $b/title"])
        .arg(&doc)
        .args(["--max-buffer-bytes", "1m", "--stats-json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim(),
        "<title>T</title>"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("\"max_buffer_bytes\":1048576"), "{stderr}");
    assert!(stderr.contains("\"live_bytes\""), "{stderr}");
}

#[test]
fn multi_respects_max_buffer_bytes_per_query() {
    let doc = write_temp("mcap.xml", "<l><i>1</i><i>2</i></l>");
    let batch = write_temp("mcap.xq", "for $i in /l/i return $i/text()\n");
    let out = gcx_bin()
        .arg("multi")
        .arg(&batch)
        .arg(&doc)
        .args(["--max-buffer-bytes", "8"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("buffer limit exceeded"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn serve_subcommand_end_to_end() {
    use std::io::{BufRead, BufReader, Read};

    // Port 0: the binary prints the actual address on stderr.
    let mut child = gcx_bin()
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let addr = loop {
        let mut line = String::new();
        assert!(
            stderr.read_line(&mut line).unwrap() > 0,
            "server died early"
        );
        if let Some(rest) = line.split("http://").nth(1) {
            break rest
                .split_whitespace()
                .next()
                .unwrap()
                .trim_end_matches('/')
                .parse::<std::net::SocketAddr>()
                .unwrap();
        }
    };
    // Drain the rest of stderr in the background so the child never
    // blocks on a full pipe.
    let drain = std::thread::spawn(move || {
        let mut rest = String::new();
        let _ = stderr.read_to_string(&mut rest);
        rest
    });

    let exchange = |req: &str| -> String {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.write_all(req.as_bytes()).unwrap();
        let mut response = String::new();
        s.read_to_string(&mut response).unwrap();
        response
    };

    let q = "for $b in /bib/book return $b/title";
    let r = exchange(&format!(
        "PUT /queries/t HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{q}",
        q.len()
    ));
    assert!(r.starts_with("HTTP/1.1 201"), "{r}");

    let doc = "<bib><book><title>T</title></book></bib>";
    let r = exchange(&format!(
        "POST /eval/t HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{doc}",
        doc.len()
    ));
    assert!(r.starts_with("HTTP/1.1 200"), "{r}");
    assert!(r.contains("<title>T</title>"), "{r}");
    assert!(r.contains("X-Gcx-Tokens:"), "{r}");

    let r = exchange("POST /shutdown HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n");
    assert!(r.starts_with("HTTP/1.1 200"), "{r}");

    let status = child.wait().unwrap();
    assert!(status.success(), "serve must exit cleanly after /shutdown");
    assert!(drain.join().unwrap().contains("drained and stopped"));
}

#[test]
fn bench_serve_smoke_writes_report() {
    let out_path =
        std::env::temp_dir().join(format!("gcx-bench-serve-{}.json", std::process::id()));
    let out = gcx_bin()
        .args(["bench", "serve", "--smoke", "--clients", "2", "--out"])
        .arg(&out_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&out_path).unwrap();
    for key in [
        "\"all_ok\":true",
        "\"cap_demo\":{\"budget_bytes\":256,\"status\":413,\"rejected\":true}",
        "\"outputs_match\":true",
        "\"peaks_match\":true",
        "\"server_stats\"",
    ] {
        assert!(json.contains(key), "missing {key}: {json}");
    }
    let _ = std::fs::remove_file(&out_path);
}

#[test]
fn run_obs_extends_stats_json() {
    let doc = write_temp("obs.xml", "<bib><book><title>T</title></book></bib>");
    let out = gcx_bin()
        .args(["run", "-e", "for $b in /bib/book return $b/title"])
        .arg(&doc)
        .args(["--obs", "--stats-json"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    for key in [
        "\"obs\"",
        "\"residency_tokens\"",
        "\"purge_batch\"",
        "\"roles\"",
        "\"tasks\"",
        "\"tokenizer_window_peak\"",
    ] {
        assert!(stderr.contains(key), "missing {key}: {stderr}");
    }
}

#[test]
fn obs_needs_a_streaming_engine() {
    let doc = write_temp("obs-dom.xml", "<a/>");
    let out = gcx_bin()
        .args(["run", "-e", "for $x in /a return $x"])
        .arg(&doc)
        .args(["--engine", "dom", "--obs"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("streaming engine"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn run_trace_writes_chrome_trace() {
    let doc = write_temp("tracef.xml", "<bib><book><title>T</title></book></bib>");
    let trace = std::env::temp_dir().join(format!("gcx-cli-trace-{}.json", std::process::id()));
    let out = gcx_bin()
        .args(["run", "-e", "for $b in /bib/book return $b/title"])
        .arg(&doc)
        .args(["--trace", trace.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim(),
        "<title>T</title>",
        "--trace must not change the query result"
    );
    let json = std::fs::read_to_string(&trace).unwrap();
    assert!(
        json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["),
        "{json}"
    );
    assert!(json.ends_with("]}"), "{json}");
    assert!(json.contains("\"name\":\"feed\""), "{json}");
    assert!(json.contains("live_bytes"), "{json}");
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn multi_trace_covers_every_query() {
    let doc = write_temp("mtrace.xml", "<l><i>1</i><i>2</i></l>");
    let batch = write_temp(
        "mtrace.xq",
        "%% first\nfor $i in /l/i return $i/text()\n%% second\ncount(/l/i)\n",
    );
    let trace = std::env::temp_dir().join(format!("gcx-cli-mtrace-{}.json", std::process::id()));
    let out = gcx_bin()
        .arg("multi")
        .arg(&batch)
        .arg(&doc)
        .args(["--trace", trace.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&trace).unwrap();
    assert!(json.contains("query-00: vm tasks (aggregate)"), "{json}");
    assert!(json.contains("query-01: vm tasks (aggregate)"), "{json}");
    assert!(json.contains("query-01: summary"), "{json}");
    let _ = std::fs::remove_file(&trace);
}

/// Every key that appears in `--stats-json` output (any quoted string
/// immediately followed by a colon). Good enough for our hand-rolled,
/// non-pretty-printed JSON: escapes never produce a bare `"` before `:`.
fn json_keys(json: &str) -> std::collections::BTreeSet<String> {
    let bytes = json.as_bytes();
    let mut keys = std::collections::BTreeSet::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && bytes[j] != b'"' {
                if bytes[j] == b'\\' {
                    j += 1;
                }
                j += 1;
            }
            if j + 1 < bytes.len() && bytes[j + 1] == b':' {
                keys.insert(json[start..j].to_string());
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    keys
}

#[test]
fn stats_json_fields_are_documented_in_architecture_md() {
    // Golden contract: every field the CLI can emit in --stats-json must
    // appear (in backticks) in ARCHITECTURE.md's schema section. Adding a
    // field without documenting it fails here.
    let arch = include_str!("../../../ARCHITECTURE.md");
    let doc = write_temp("schema.xml", "<bib><book><title>T</title></book></bib>");

    let run = gcx_bin()
        .args(["run", "-e", "for $b in /bib/book return $b/title"])
        .arg(&doc)
        .args(["--obs", "--stats-json", "--max-buffer-bytes", "1m"])
        .output()
        .unwrap();
    assert!(run.status.success());

    // One query stays under the buffer budget (succeeds, report + obs),
    // the root copy blows past it (runtime failure, `error`), so both
    // per_query shapes are exercised. The batch exits nonzero but the
    // stats JSON is printed either way. Peaks are deterministic: the
    // text() query tops out at 552 bytes, the root copy needs 936.
    let mdoc = write_temp(
        "schema-m.xml",
        "<l><i>aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa</i>\
         <i>bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb</i></l>",
    );
    let batch = write_temp(
        "schema.xq",
        "%% a\nfor $i in /l/i return $i/text()\n%% b\nfor $x in /l return $x\n",
    );
    let multi = gcx_bin()
        .arg("multi")
        .arg(&batch)
        .arg(&mdoc)
        .args(["--obs", "--stats-json", "--max-buffer-bytes", "700"])
        .output()
        .unwrap();
    let mut keys = json_keys(&String::from_utf8_lossy(&run.stderr));
    let multi_stderr = String::from_utf8_lossy(&multi.stderr);
    keys.extend(json_keys(&multi_stderr));
    assert!(keys.contains("obs"), "sample runs must exercise telemetry");
    assert!(
        keys.contains("per_query"),
        "sample runs must exercise the batch shape: {multi_stderr}"
    );
    assert!(
        keys.contains("error") && keys.contains("report"),
        "the batch must exercise both per_query shapes: {multi_stderr}"
    );

    // A --threads run on a non-shard-safe query (the body copies the
    // whole binding from the root) exercises the partition-parallel
    // fields including `fallback`.
    let par_run = gcx_bin()
        .args(["run", "-e", "for $b in /bib return $b"])
        .arg(&doc)
        .args(["--threads", "2", "--stats-json"])
        .output()
        .unwrap();
    assert!(par_run.status.success());
    let par_keys = json_keys(&String::from_utf8_lossy(&par_run.stderr));
    assert!(
        par_keys.contains("fallback") && par_keys.contains("shard_path"),
        "the --threads run must report its path and fallback reason"
    );
    keys.extend(par_keys);

    // A schema-aware run exercises the `schema` stats section.
    let sdoc = write_temp("schema-s.xml", "<site><regions></regions></site>");
    let schema_run = gcx_bin()
        .args(["run", "-e", "for $r in /site/regions return $r"])
        .arg(&sdoc)
        .args(["--schema", "xmark", "--stats-json"])
        .output()
        .unwrap();
    assert!(schema_run.status.success());
    keys.extend(json_keys(&String::from_utf8_lossy(&schema_run.stderr)));
    assert!(
        keys.contains("schema"),
        "the schema-aware run must exercise the schema stats section"
    );

    for key in keys {
        assert!(
            arch.contains(&format!("`{key}`")),
            "--stats-json field `{key}` is not documented in ARCHITECTURE.md \
             (see \"The --stats-json schema\")"
        );
    }
}

#[test]
fn dom_engine_rejects_buffer_budget() {
    let doc = write_temp("domcap.xml", "<a/>");
    let out = gcx_bin()
        .args(["run", "-e", "for $x in /a return $x"])
        .arg(&doc)
        .args(["--engine", "dom", "--max-buffer-bytes", "64k"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("not supported with --engine dom"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
