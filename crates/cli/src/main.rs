//! `gcx` — command-line interface for the GCX streaming XQuery engine.
//!
//! ```text
//! gcx run <query.xq|-e QUERY> <input.xml>   evaluate a query over a document
//! gcx explain <query.xq|-e QUERY>           show roles + rewritten query
//! gcx trace <query.xq|-e QUERY> <input.xml> buffer-occupancy trace (CSV)
//! gcx generate <MB> [out.xml]               emit an XMark-like document
//! gcx validate <input.xml>                  well-formedness check
//! ```

use gcx_core::{CompiledQuery, EngineOptions};
use std::io::{BufReader, BufWriter, Read, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try `gcx help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("gcx: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "gcx — streaming XQuery evaluation with dynamic buffer minimization

USAGE:
  gcx run     <query.xq | -e QUERY> <input.xml> [--engine gcx|projection|full|dom]
              [--stats] [--indent]
  gcx explain <query.xq | -e QUERY>
  gcx trace   <query.xq | -e QUERY> <input.xml> [--every N]
  gcx generate <MB> [out.xml] [--seed N]
  gcx validate <input.xml>

Query files use the composition-free XQuery fragment of the GCX paper
(VLDB 2007); `-e` passes the query inline. Results stream to stdout."
    );
}

/// Read the query from `-e TEXT` or a file path; returns (query, rest).
fn take_query(args: &[String]) -> Result<(String, &[String]), String> {
    match args.first().map(String::as_str) {
        Some("-e") => {
            let text = args.get(1).ok_or("`-e` needs a query argument")?.clone();
            Ok((text, &args[2..]))
        }
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read query file `{path}`: {e}"))?;
            Ok((text, &args[1..]))
        }
        None => Err("missing query (file path or `-e QUERY`)".into()),
    }
}

fn open_input(path: &str) -> Result<Box<dyn Read>, String> {
    if path == "-" {
        Ok(Box::new(std::io::stdin().lock()))
    } else {
        let f =
            std::fs::File::open(path).map_err(|e| format!("cannot open input `{path}`: {e}"))?;
        Ok(Box::new(BufReader::new(f)))
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let (query_text, rest) = take_query(args)?;
    let input_path = rest.first().ok_or("missing input document")?;
    let flags: Vec<&str> = rest[1..].iter().map(String::as_str).collect();
    let engine = flags
        .iter()
        .position(|f| *f == "--engine")
        .and_then(|i| flags.get(i + 1).copied())
        .unwrap_or("gcx");
    let stats = flags.contains(&"--stats");
    let indent = flags.contains(&"--indent");

    if engine == "dom" {
        let q = gcx_query::compile(&query_text).map_err(|e| e.to_string())?;
        let input = open_input(input_path)?;
        let out = BufWriter::new(std::io::stdout().lock());
        let report = gcx_dom::run(&q, input, out).map_err(|e| e.to_string())?;
        println!();
        if stats {
            eprintln!(
                "dom nodes: {}   output bytes: {}",
                report.nodes, report.output_bytes
            );
        }
        return Ok(());
    }

    let mut opts = match engine {
        "gcx" => EngineOptions::gcx(),
        "projection" => EngineOptions::projection_only(),
        "full" => EngineOptions::full_buffering(),
        other => return Err(format!("unknown engine `{other}`")),
    };
    if indent {
        opts.indent = Some("  ".to_string());
    }
    let q = CompiledQuery::compile(&query_text).map_err(|e| e.to_string())?;
    let input = open_input(input_path)?;
    let out = BufWriter::new(std::io::stdout().lock());
    let report = gcx_core::run(&q, &opts, input, out).map_err(|e| e.to_string())?;
    println!();
    if stats {
        eprintln!(
            "tokens: {}   peak buffered nodes: {}   allocated: {}   purged: {}   out bytes: {}",
            report.tokens,
            report.buffer.peak_live,
            report.buffer.allocated,
            report.buffer.purged,
            report.output_bytes
        );
    }
    Ok(())
}

fn cmd_explain(args: &[String]) -> Result<(), String> {
    let (query_text, _) = take_query(args)?;
    let q = CompiledQuery::compile(&query_text).map_err(|e| e.to_string())?;
    print!("{}", q.explain());
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let (query_text, rest) = take_query(args)?;
    let input_path = rest.first().ok_or("missing input document")?;
    let every = rest
        .iter()
        .position(|f| f == "--every")
        .and_then(|i| rest.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(1);
    let q = CompiledQuery::compile(&query_text).map_err(|e| e.to_string())?;
    let input = open_input(input_path)?;
    let report = gcx_core::run(
        &q,
        &EngineOptions::gcx().with_timeline(every),
        input,
        std::io::sink(),
    )
    .map_err(|e| e.to_string())?;
    let tl = report.timeline.expect("timeline enabled");
    let mut out = BufWriter::new(std::io::stdout().lock());
    writeln!(out, "tokens,buffered_nodes").unwrap();
    for (t, n) in &tl.points {
        writeln!(out, "{t},{n}").unwrap();
    }
    eprintln!("peak buffered nodes: {}", tl.peak());
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let mb: u64 = args
        .first()
        .ok_or("missing size in MB")?
        .parse()
        .map_err(|_| "size must be a number (MB)")?;
    let seed = args
        .iter()
        .position(|f| f == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok());
    let mut cfg = gcx_xmark::XmarkConfig::sized(mb * 1024 * 1024);
    if let Some(s) = seed {
        cfg.seed = s;
    }
    let written = match args.get(1).filter(|a| !a.starts_with("--")) {
        Some(path) => {
            let f = BufWriter::new(
                std::fs::File::create(path).map_err(|e| format!("cannot create `{path}`: {e}"))?,
            );
            gcx_xmark::generate(&cfg, f).map_err(|e| e.to_string())?
        }
        None => {
            let out = BufWriter::new(std::io::stdout().lock());
            gcx_xmark::generate(&cfg, out).map_err(|e| e.to_string())?
        }
    };
    eprintln!("wrote {written} bytes");
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing input document")?;
    let input = open_input(path)?;
    let mut t = gcx_xml::Tokenizer::new(input);
    match t.validate_to_end() {
        Ok(tokens) => {
            eprintln!("well-formed ({tokens} tokens)");
            Ok(())
        }
        Err(e) => Err(format!("not well-formed: {e}")),
    }
}
