#![deny(unsafe_code)]
//! `gcx` — command-line interface for the GCX streaming XQuery engine.
//!
//! ```text
//! gcx run <query.xq|-e QUERY> <input.xml>   evaluate a query over a document
//! gcx multi <batch.xq|--xmark> <input.xml>  evaluate a query batch in ONE pass
//! gcx serve [--addr HOST:PORT]              streaming XQuery HTTP service
//! gcx bench throughput [--smoke]            throughput baseline (BENCH_throughput.json)
//! gcx bench serve [--smoke]                 service load test (BENCH_server.json)
//! gcx bench obs-overhead [--smoke]          telemetry on/off cost (BENCH_obs_overhead.json)
//! gcx explain <query.xq|-e QUERY>           roles, rewritten query, program listing
//! gcx analyze <query.xq|-e QUERY>           static streamability class, bound, lints
//! gcx trace <query.xq|-e QUERY> <input.xml> buffer-occupancy trace (CSV)
//! gcx generate <MB> [out.xml]               emit an XMark-like document
//! gcx validate <input.xml>                  well-formedness check
//! ```

use gcx_core::{CompiledQuery, EngineOptions, RunReport};
use std::io::{BufReader, BufWriter, Read, Write};
use std::process::ExitCode;

mod bench;
mod trace;

/// Heap tracking for `gcx bench throughput` (peak bytes + allocation
/// counts). A handful of relaxed atomics per allocation — and the engine's
/// steady state allocates nothing — so the other commands are unaffected.
#[global_allocator]
static ALLOC: gcx_memtrack::TrackingAllocator = gcx_memtrack::TrackingAllocator::new();

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("multi") => cmd_multi(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("bench") => bench::cmd_bench(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try `gcx help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("gcx: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "gcx — streaming XQuery evaluation with dynamic buffer minimization

USAGE:
  gcx run     <query.xq | -e QUERY> <input.xml> [--engine gcx|projection|full|dom]
              [--stats] [--stats-json] [--indent] [--max-buffer-bytes N]
              [--obs] [--trace FILE] [--no-opt] [--schema xmark|FILE]
              [--threads N]
  gcx multi   <batch.xq | --xmark> <input.xml> [--out-dir DIR]
              [--stats] [--stats-json] [--indent] [--max-buffer-bytes N]
              [--obs] [--trace FILE] [--no-opt] [--schema xmark|FILE]
  gcx serve   [--addr HOST:PORT] [--workers N] [--queue N]
              [--max-buffer-bytes N] [--read-timeout-secs S]
              [--max-request-secs S] [--no-opt] [--schema xmark|FILE]
              [--eval-threads N] [--max-spool-bytes N]
              [--max-static-class constant|per-item|subtree|document]
  gcx bench   throughput [--mb N] [--iters K] [--seed S] [--smoke] [--min-q8-mbs N]
              [--threads N] [--out FILE]
  gcx bench   serve [--mb N] [--clients N] [--seed S] [--smoke] [--out FILE]
  gcx bench   obs-overhead [--mb N] [--iters K] [--seed S] [--smoke]
              [--min-q8-mbs N] [--out FILE]
  gcx explain <query.xq | -e QUERY> [--schema xmark|FILE]
  gcx analyze <query.xq | -e QUERY> [--schema xmark|FILE] [--json]
  gcx trace   <query.xq | -e QUERY> <input.xml> [--every N]
  gcx generate <MB> [out.xml] [--seed N] [--doctype]
  gcx validate <input.xml>

Query files use the composition-free XQuery fragment of the GCX paper
(VLDB 2007); `-e` passes the query inline. Results stream to stdout.

`multi` evaluates a whole batch of queries in a single pass over the
input (shared tokenization + merged projection NFA, per-query buffers).
A batch file separates queries with lines starting with `%%`; `--xmark`
runs the built-in XMark batch instead. Outputs go to stdout in batch
order (or to <DIR>/query-NN.out with --out-dir). `--stats-json` emits a
machine-readable report on stderr (also available for `run`).

`serve` starts the streaming XQuery service (default 127.0.0.1:7007):
PUT /queries/NAME registers a query (compiled once, shared across
requests), POST /eval/NAME streams a document through it and the result
back while the document is still arriving, GET /stats reports aggregate
counters. A bounded worker pool + admission queue answers overload with
503; per-request buffer budgets answer runaway queries with 413 instead
of OOM. Stop it gracefully with POST /shutdown (drains in-flight work).

`--obs` (run, multi) turns on engine telemetry: `--stats-json` then
carries an `obs` section with buffer-lifecycle histograms (append-to-
purge residency, purged-node sizes, purge batch sizes), purge-trigger
counts, per-role lifecycle counters, a live-bytes timeline, and VM
task-frame timing. `--trace FILE` additionally writes the run as a
Chrome trace-event JSON file (open in chrome://tracing or
ui.perfetto.dev): feed-call spans, a buffer live-bytes counter track,
and a VM time-attribution lane. Telemetry never changes results:
outputs and buffer peaks stay bit-identical to an untraced run.

`--max-buffer-bytes N` (run, multi, serve; also the X-Gcx-Max-Buffer-Bytes
request header) is a hard per-run buffer budget: crossing it fails that
run with a typed error, never an abort. Suffixes k/m/g are accepted.

`--schema xmark|FILE` (run, multi, serve, explain) promises the input
validates against a DTD: `xmark` is the bundled XMark DTD, FILE is read
as one (an internal subset or a full DOCTYPE declaration). The engine
then prunes DTD-unsatisfiable projection paths, skips subtrees no
declared ancestry can reach, and — where the DTD fixes sibling order —
signs variables off and purges buffers before the enclosing element
closes. Outputs are byte-identical with or without; only buffer peaks
and time-to-first-byte shrink. `--stats-json` reports the effect under
`schema` (pruned_paths, reach_cuts, early_scan_ends, early_signoffs);
`explain --schema` lists the pruned paths. Without the flag, a
`<!DOCTYPE name [...]>` declaration in the input stream is adopted
automatically for the sibling-order facts (`gcx generate --doctype`
emits one). Per-query override on the service: the `X-Gcx-Schema:
xmark|none` header on PUT /queries.

`bench throughput` sweeps the 11 paper queries over a generated XMark
document — standalone, batched, and with the XMark DTD attached — and
writes BENCH_throughput.json (MB/s, tokens/s, peak buffer, allocation
counts, plus a `schema` section comparing peak buffer bytes with the
DTD on vs off). `--smoke` runs a small 1MB document once (CI) and
enforces a Q8 throughput floor (20 MB/s by default, `--min-q8-mbs N`
to override; `bench obs-overhead` applies the same gate to its
telemetry-off sweep) so a hash-join regression fails the build instead
of shipping a quadratic plan.

`bench serve` starts an in-process service, registers the 11 paper
queries and hammers it with N concurrent clients; every response is
cross-checked byte-for-byte against the offline engine and the buffer
peaks must match exactly (the service inherits the paper's memory
contract). Also reports per-request lowering overhead: shared compiled
program vs recompiling per request. Writes BENCH_server.json.

`bench obs-overhead` sweeps the paper queries twice — telemetry off
and telemetry on — asserts outputs and buffer peaks are identical in
both modes, and records the wall-clock delta. The same comparison is
embedded in BENCH_throughput.json under `obs_overhead`.

`--threads N` (run) partitions the document across N worker threads
when the query is shard-safe: the input is read whole, split at
guard-checked element boundaries, each shard evaluated by its own
engine on its own thread, and the outputs merged in document order —
byte-identical to a serial run (pinned by the parallel differential
suite). Whole-document `count(...)` queries take a two-phase path
(per-shard counts, summed); anything the shard-safety analysis cannot
prove (e.g. Q8's cross-shard join) falls back to one thread with the
reason under `--stats`/`--stats-json` (`shard_path`, `shards`,
`threads`, `fallback`). `gcx serve --eval-threads N` applies the same
budget to spooled request bodies and reports the taken path in the
X-Gcx-Shard-Path response header; bodies larger than `--max-spool-bytes`
(default 256m, 0 = unlimited) stream through the serial path instead of
spooling, keeping per-request memory bounded. `gcx bench throughput
--threads N` records a parallel sweep under `parallel` in
BENCH_throughput.json.

`--no-opt` (run, multi, serve) skips the gcx-ir plan optimizer (step
fusion, shared path prefixes, exists caching, hash joins) and executes
the direct lowering instead. Outputs, token counts and buffer peaks are
identical either way (pinned by the optimizer differential suite); the
flag exists for benchmarking and as a diagnostic escape hatch.
`--stats-json` reports what the optimizer did under `opt_passes` /
`instructions_before` / `instructions_after`.

`explain` prints the full compilation report: projection paths and
roles, the rewritten query with signOff statements, the unoptimized
gcx-ir program listing (instructions, conditions, path plans, step
table), the optimizer's per-pass rewrite summary with before/after
cost estimates, the optimized program the engine executes, and the
static streamability analysis.

`analyze` prints just that analysis: the query's streamability class
(constant | per-item | subtree | document — how the worst-case buffer
peak scales with the document), a symbolic bound, a per-binding class
table, and structured lints (GCX-JOIN, GCX-POS, GCX-ROOT, GCX-AGG,
GCX-SUBTREE, GCX-DTD) naming each construct that forces buffering and
why. `--schema` lets DTD cardinality facts tighten region classes;
`--json` emits the same analysis as JSON (the `analysis` object of
`run --stats-json`). The verdict is sound but may be loose: a
constant/per-item class is a promise (pinned by the workspace
soundness suite), a document class is a warning, not a proof. `gcx
serve --max-static-class CLASS` enforces the class at registration
time: PUT /queries answers 422 with the lint diagnostics for any query
above the cap, and every successful registration reports the class in
the X-Gcx-Streamability response header."
    );
}

/// Compile-time stats of one query as JSON object members (no braces):
/// the pipeline's wall-clock cost, the executed program's sizes, and
/// what the plan optimizer did (`opt_passes` is `[]` under `--no-opt`).
fn compile_members(q: &CompiledQuery) -> String {
    let st = q.program.stats();
    format!(
        "\"compile_micros\":{},{},\"instructions_before\":{},\"instructions_after\":{},\
         \"opt_passes\":{}",
        q.compile_micros,
        // Inline the program stats object's members.
        st.to_json().trim_start_matches('{').trim_end_matches('}'),
        q.unoptimized.stats().instructions,
        st.instructions,
        q.opt
            .as_ref()
            .map_or_else(|| "[]".to_string(), |o| o.passes_json()),
    )
}

/// Append a JSON member to a hand-rolled JSON object string.
fn splice_json(object: &str, member: &str) -> String {
    let body = object.trim_end();
    let body = body.strip_suffix('}').expect("JSON object");
    format!("{body},{member}}}")
}

/// Read the query from `-e TEXT` or a file path; returns (query, rest).
fn take_query(args: &[String]) -> Result<(String, &[String]), String> {
    match args.first().map(String::as_str) {
        Some("-e") => {
            let text = args.get(1).ok_or("`-e` needs a query argument")?.clone();
            Ok((text, &args[2..]))
        }
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read query file `{path}`: {e}"))?;
            Ok((text, &args[1..]))
        }
        None => Err("missing query (file path or `-e QUERY`)".into()),
    }
}

/// Extract `--trace FILE` / `--trace=FILE` from a flag list.
fn take_trace(flags: &[&str]) -> Result<Option<String>, String> {
    for (i, f) in flags.iter().enumerate() {
        if let Some(v) = f.strip_prefix("--trace=") {
            if v.is_empty() {
                return Err("`--trace=` needs a file path".into());
            }
            return Ok(Some(v.to_string()));
        }
        if *f == "--trace" {
            let v = flags.get(i + 1).ok_or("`--trace` needs a file path")?;
            return Ok(Some((*v).to_string()));
        }
    }
    Ok(None)
}

/// Write the Chrome trace for `runs` to `path`.
fn write_trace(path: &str, runs: &[(String, &RunReport)]) -> Result<(), String> {
    let json = trace::build(runs)?;
    std::fs::write(path, json).map_err(|e| format!("cannot write trace `{path}`: {e}"))?;
    eprintln!("wrote Chrome trace to {path} (load in chrome://tracing or ui.perfetto.dev)");
    Ok(())
}

/// Extract `--max-buffer-bytes N` from a flag list. Sizes accept k/m/g
/// suffixes, parsed by the same routine the server uses for the
/// `X-Gcx-Max-Buffer-Bytes` header (`gcx_server::parse_byte_size`).
fn take_max_buffer_bytes(flags: &[&str]) -> Result<Option<u64>, String> {
    if !flags.contains(&"--max-buffer-bytes") {
        return Ok(None);
    }
    let v = bench::flag_value(flags, "--max-buffer-bytes")
        .ok_or("`--max-buffer-bytes` needs a value")?;
    gcx_server::parse_byte_size(v)
        .map(Some)
        .ok_or_else(|| format!("invalid byte size `{v}` (number with optional k/m/g)"))
}

/// Extract `--schema xmark|FILE` from a flag list: `xmark` selects the
/// bundled XMark DTD, anything else is read as a DTD file (an internal
/// subset, or a full `<!DOCTYPE name [...]>` declaration).
pub(crate) fn take_schema(
    flags: &[&str],
) -> Result<Option<std::sync::Arc<gcx_schema::Dtd>>, String> {
    if !flags.contains(&"--schema") {
        return Ok(None);
    }
    let v = bench::flag_value(flags, "--schema").ok_or("`--schema` needs xmark or a DTD file")?;
    if v == "xmark" {
        return Ok(Some(gcx_schema::Dtd::xmark()));
    }
    let text =
        std::fs::read_to_string(v).map_err(|e| format!("cannot read schema file `{v}`: {e}"))?;
    gcx_schema::Dtd::parse(&text)
        .map(|d| Some(std::sync::Arc::new(d)))
        .map_err(|e| format!("schema file `{v}` does not parse: {e}"))
}

fn open_input(path: &str) -> Result<Box<dyn Read>, String> {
    if path == "-" {
        Ok(Box::new(std::io::stdin().lock()))
    } else {
        let f =
            std::fs::File::open(path).map_err(|e| format!("cannot open input `{path}`: {e}"))?;
        Ok(Box::new(BufReader::new(f)))
    }
}

/// Evaluate through the push-driven [`gcx_core::EvalSession`], feeding
/// 64KB chunks and draining output as it appears.
fn run_chunked<W: Write>(
    q: &CompiledQuery,
    opts: &EngineOptions,
    mut input: Box<dyn Read>,
    out: &mut W,
) -> Result<RunReport, String> {
    let mut session = q.session(opts);
    let mut chunk = vec![0u8; 64 * 1024];
    loop {
        let n = input
            .read(&mut chunk)
            .map_err(|e| format!("input read: {e}"))?;
        if n == 0 {
            break;
        }
        session.feed(&chunk[..n]).map_err(|e| e.to_string())?;
        session.take_output(out).map_err(|e| e.to_string())?;
    }
    let report = session.finish().map_err(|e| e.to_string())?;
    session.take_output(out).map_err(|e| e.to_string())?;
    Ok(report)
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let (query_text, rest) = take_query(args)?;
    let input_path = rest.first().ok_or("missing input document")?;
    let flags: Vec<&str> = rest[1..].iter().map(String::as_str).collect();
    let engine = flags
        .iter()
        .position(|f| *f == "--engine")
        .and_then(|i| flags.get(i + 1).copied())
        .unwrap_or("gcx");
    let stats = flags.contains(&"--stats");
    let stats_json = flags.contains(&"--stats-json");
    let indent = flags.contains(&"--indent");
    let obs = flags.contains(&"--obs");
    let no_opt = flags.contains(&"--no-opt");
    let trace_path = take_trace(&flags)?;
    let threads: usize = match bench::flag_value(&flags, "--threads") {
        Some(v) => v
            .parse()
            .ok()
            .filter(|&t| t > 0)
            .ok_or("--threads must be a positive number")?,
        None => 1,
    };

    // One compiled artifact for every engine: the DOM oracle interprets
    // the normalized AST out of the same `CompiledQuery` the streaming
    // configurations execute the lowered program from.
    let q = CompiledQuery::compile_opts(&query_text, !no_opt).map_err(|e| e.to_string())?;

    if engine == "dom" {
        if threads > 1 {
            return Err(
                "--threads needs a streaming engine (gcx|projection|full): the DOM oracle \
                 cannot partition the document"
                    .into(),
            );
        }
        if obs || trace_path.is_some() {
            return Err(
                "--obs/--trace need a streaming engine (gcx|projection|full): the DOM \
                 oracle has no buffer lifecycle to observe"
                    .into(),
            );
        }
        if flags.contains(&"--max-buffer-bytes") {
            return Err(
                "--max-buffer-bytes is not supported with --engine dom: the DOM oracle \
                 materializes the whole document (use gcx|projection|full)"
                    .into(),
            );
        }
        if flags.contains(&"--schema") {
            return Err(
                "--schema is not supported with --engine dom: the DOM oracle has no \
                 projection or buffers for a schema to shrink (use gcx|projection|full)"
                    .into(),
            );
        }
        let input = open_input(input_path)?;
        let out = BufWriter::new(std::io::stdout().lock());
        let report = gcx_dom::run(&q.query, input, out).map_err(|e| e.to_string())?;
        println!();
        if stats {
            eprintln!(
                "dom nodes: {}   output bytes: {}",
                report.nodes, report.output_bytes
            );
        }
        return Ok(());
    }

    let mut opts = match engine {
        "gcx" => EngineOptions::gcx(),
        "projection" => EngineOptions::projection_only(),
        "full" => EngineOptions::full_buffering(),
        other => return Err(format!("unknown engine `{other}`")),
    };
    if indent {
        opts.indent = Some("  ".to_string());
    }
    opts.max_buffer_bytes = take_max_buffer_bytes(&flags)?;
    opts.telemetry = obs || trace_path.is_some();
    opts.schema = take_schema(&flags)?;
    let mut input = open_input(input_path)?;
    // Partition facts for the stats report: (taken path, shard count,
    // fallback reason). The plain streaming paths are honestly serial.
    let mut shard_path = gcx_par::ShardPath::Serial;
    let mut shards = 1usize;
    let mut fallback: Option<String> = None;
    let report = if threads > 1 {
        // Partition-parallel evaluation needs the whole document (shards
        // are byte ranges), so `--threads` trades streaming for cores.
        let mut doc = Vec::new();
        input
            .read_to_end(&mut doc)
            .map_err(|e| format!("input read: {e}"))?;
        let outcome =
            gcx_par::run_parallel(&q, &opts, &gcx_par::ParOptions::with_threads(threads), &doc)
                .map_err(|e| e.to_string())?;
        let mut out = BufWriter::new(std::io::stdout().lock());
        out.write_all(&outcome.output).map_err(|e| e.to_string())?;
        out.flush().map_err(|e| e.to_string())?;
        shard_path = outcome.path;
        shards = outcome.shards;
        fallback = outcome.fallback;
        outcome.report
    } else if opts.telemetry {
        // Drive the push session in chunks so the telemetry carries real
        // per-chunk feed spans (output and buffer peaks are bit-identical
        // to the pull-mode run — pinned by the chunk_splits suite).
        let mut out = BufWriter::new(std::io::stdout().lock());
        run_chunked(&q, &opts, input, &mut out)?
    } else {
        let out = BufWriter::new(std::io::stdout().lock());
        gcx_core::run(&q, &opts, input, out).map_err(|e| e.to_string())?
    };
    println!();
    if let Some(path) = &trace_path {
        write_trace(path, &[("query".to_string(), &report)])?;
    }
    if stats_json {
        let par = format!(
            "\"threads\":{threads},\"shards\":{shards},\"shard_path\":\"{}\"{}",
            shard_path.as_str(),
            fallback
                .as_deref()
                .map(|r| format!(",\"fallback\":\"{}\"", gcx_obs::json_escape(r)))
                .unwrap_or_default(),
        );
        let analysis = gcx_analyze::analyze_program(&q.program, opts.schema.as_deref());
        let compile = format!(
            "{par},\"compile\":{{{}}},\"analysis\":{}",
            compile_members(&q),
            analysis.to_json()
        );
        eprintln!("{}", splice_json(&report.to_json(), &compile));
    } else if stats {
        eprintln!(
            "tokens: {}   peak buffered nodes: {}   allocated: {}   purged: {}   out bytes: {}",
            report.tokens,
            report.buffer.peak_live,
            report.buffer.allocated,
            report.buffer.purged,
            report.output_bytes
        );
        if threads > 1 {
            eprintln!(
                "threads: {threads}   shards: {shards}   path: {}{}",
                shard_path.as_str(),
                fallback
                    .as_deref()
                    .map(|r| format!("   fallback: {r}"))
                    .unwrap_or_default(),
            );
        }
    }
    Ok(())
}

/// Split a batch file into queries: entries are separated by lines whose
/// first non-space characters are `%%` (the rest of such a line is a
/// comment). Empty entries are dropped.
fn split_batch(text: &str) -> Vec<String> {
    let mut queries = Vec::new();
    let mut current = String::new();
    for line in text.lines() {
        if line.trim_start().starts_with("%%") {
            if !current.trim().is_empty() {
                queries.push(std::mem::take(&mut current));
            } else {
                current.clear();
            }
        } else {
            current.push_str(line);
            current.push('\n');
        }
    }
    if !current.trim().is_empty() {
        queries.push(current);
    }
    queries
}

fn cmd_multi(args: &[String]) -> Result<(), String> {
    let first = args.first().ok_or("missing batch (file path or --xmark)")?;
    let (texts, rest): (Vec<(String, String)>, &[String]) = if first == "--xmark" {
        let v: Vec<(String, String)> = gcx_xmark::queries::paper_queries()
            .into_iter()
            .map(|(n, t)| (n.to_string(), t.to_string()))
            .collect();
        (v, &args[1..])
    } else {
        let text = std::fs::read_to_string(first)
            .map_err(|e| format!("cannot read batch file `{first}`: {e}"))?;
        let queries = split_batch(&text);
        if queries.is_empty() {
            return Err(format!("batch file `{first}` contains no queries"));
        }
        (
            queries
                .into_iter()
                .enumerate()
                .map(|(i, q)| (format!("query-{i:02}"), q))
                .collect(),
            &args[1..],
        )
    };
    let input_path = rest.first().ok_or("missing input document")?;
    let flags: Vec<&str> = rest[1..].iter().map(String::as_str).collect();
    let stats = flags.contains(&"--stats");
    let stats_json = flags.contains(&"--stats-json");
    let obs = flags.contains(&"--obs");
    let trace_path = take_trace(&flags)?;
    let out_dir = flags
        .iter()
        .position(|f| *f == "--out-dir")
        .and_then(|i| flags.get(i + 1).copied());

    let no_opt = flags.contains(&"--no-opt");
    let mut queries = Vec::with_capacity(texts.len());
    for (name, text) in &texts {
        queries.push(
            CompiledQuery::compile_opts(text, !no_opt)
                .map_err(|e| format!("{name} failed: {e}"))?,
        );
    }
    let mut opts = gcx_multi::BatchOptions::default();
    if flags.contains(&"--indent") {
        opts.indent = Some("  ".to_string());
    }
    opts.max_buffer_bytes = take_max_buffer_bytes(&flags)?;
    opts.telemetry = obs || trace_path.is_some();
    opts.schema = take_schema(&flags)?;
    let input = open_input(input_path)?;
    let report = gcx_multi::SharedRun::new(opts)
        .run(&queries, input)
        .map_err(|e| e.to_string())?;
    if let Some(path) = &trace_path {
        let runs: Vec<(String, &RunReport)> = texts
            .iter()
            .zip(&report.queries)
            .filter_map(|((name, _), run)| run.report.as_ref().ok().map(|r| (name.clone(), r)))
            .collect();
        write_trace(path, &runs)?;
    }

    // Per-query evaluator failures are reported but don't hide the rest.
    let mut failures = Vec::new();
    for ((name, _), run) in texts.iter().zip(&report.queries) {
        if let Err(e) = &run.report {
            failures.push(format!("{name}: {e}"));
        }
    }
    match out_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir).map_err(|e| format!("cannot create `{dir}`: {e}"))?;
            for (i, run) in report.queries.iter().enumerate() {
                let path = format!("{dir}/query-{i:02}.out");
                std::fs::write(&path, &run.output)
                    .map_err(|e| format!("cannot write `{path}`: {e}"))?;
            }
        }
        None => {
            let mut out = BufWriter::new(std::io::stdout().lock());
            for run in &report.queries {
                out.write_all(&run.output).map_err(|e| e.to_string())?;
                writeln!(out).map_err(|e| e.to_string())?;
            }
            out.flush().map_err(|e| e.to_string())?;
        }
    }
    if stats_json {
        let mut compile = String::from("\"compile\":[");
        for (i, ((name, _), q)) in texts.iter().zip(&queries).enumerate() {
            if i > 0 {
                compile.push(',');
            }
            compile.push_str(&format!("{{\"name\":\"{name}\",{}}}", compile_members(q)));
        }
        compile.push(']');
        eprintln!("{}", splice_json(&report.to_json(), &compile));
    } else if stats {
        eprintln!(
            "queries: {}   tokens (single pass): {}   fan-out events: {}   \
             share factor: {:.2}x   elapsed: {:.1}ms",
            report.queries.len(),
            report.tokens,
            report.fanout_events,
            report.share_factor(),
            report.elapsed.as_secs_f64() * 1e3
        );
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} quer(ies) failed: {}",
            failures.len(),
            failures.join("; ")
        ))
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let flags: Vec<&str> = args.iter().map(String::as_str).collect();
    let flag_value = |name: &str| bench::flag_value(&flags, name);
    let mut config = gcx_server::ServerConfig::default();
    if let Some(addr) = flag_value("--addr") {
        config.addr = addr.to_string();
    }
    if let Some(v) = flag_value("--workers") {
        config.workers = v
            .parse::<usize>()
            .ok()
            .filter(|&w| w > 0)
            .ok_or("--workers must be a positive number")?;
    }
    if let Some(v) = flag_value("--queue") {
        config.queue_depth = v
            .parse::<usize>()
            .ok()
            .filter(|&q| q > 0)
            .ok_or("--queue must be a positive number")?;
    }
    config.max_buffer_bytes = take_max_buffer_bytes(&flags)?;
    config.optimize = !flags.contains(&"--no-opt");
    config.schema = take_schema(&flags)?;
    if let Some(v) = flag_value("--eval-threads") {
        config.eval_threads = v
            .parse::<usize>()
            .ok()
            .filter(|&t| t > 0)
            .ok_or("--eval-threads must be a positive number")?;
    }
    if let Some(v) = flag_value("--max-spool-bytes") {
        let bytes = gcx_server::parse_byte_size(v)
            .ok_or_else(|| format!("invalid byte size `{v}` (number with optional k/m/g)"))?;
        // 0 = unlimited, mirroring the timeout flags.
        config.max_spool_bytes = (bytes > 0).then_some(bytes);
    }
    if let Some(v) = flag_value("--max-static-class") {
        let class = gcx_analyze::StreamClass::parse(v).ok_or_else(|| {
            format!("invalid class `{v}` (constant | per-item | subtree | document)")
        })?;
        config.admission_class = Some(class);
    }
    if let Some(v) = flag_value("--read-timeout-secs") {
        let secs: u64 = v
            .parse()
            .map_err(|_| "--read-timeout-secs must be a number")?;
        config.read_timeout = (secs > 0).then(|| std::time::Duration::from_secs(secs));
    }
    if let Some(v) = flag_value("--max-request-secs") {
        let secs: u64 = v
            .parse()
            .map_err(|_| "--max-request-secs must be a number (0 = unlimited)")?;
        config.max_request_duration = (secs > 0).then(|| std::time::Duration::from_secs(secs));
    }
    let workers = config.workers;
    let queue = config.queue_depth;
    let budget = config.max_buffer_bytes;
    let handle = gcx_server::serve(config).map_err(|e| format!("cannot start server: {e}"))?;
    eprintln!(
        "gcx-server listening on http://{} ({} workers, queue {}, buffer budget {})",
        handle.addr(),
        workers,
        queue,
        budget.map_or_else(|| "unlimited".to_string(), |b| format!("{b} bytes")),
    );
    eprintln!(
        "register: curl -X PUT --data-binary @query.xq http://{}/queries/NAME",
        handle.addr()
    );
    eprintln!(
        "evaluate: curl -X POST --data-binary @doc.xml http://{}/eval/NAME",
        handle.addr()
    );
    eprintln!("shutdown: curl -X POST http://{}/shutdown", handle.addr());
    handle.join();
    eprintln!("gcx-server drained and stopped");
    Ok(())
}

fn cmd_explain(args: &[String]) -> Result<(), String> {
    let (query_text, rest) = take_query(args)?;
    let flags: Vec<&str> = rest.iter().map(String::as_str).collect();
    let schema = take_schema(&flags)?;
    let q = CompiledQuery::compile(&query_text).map_err(|e| e.to_string())?;
    print!("{}", q.explain());
    println!("\n== Streamability analysis ==");
    print!(
        "{}",
        gcx_analyze::analyze_program(&q.program, schema.as_deref()).text()
    );
    if let Some(dtd) = schema {
        let prune = dtd.prune(q.program.matcher_paths(), q.program.symbols());
        println!("\n== schema ==");
        println!("{}", dtd.summary());
        println!(
            "projection paths: {} total, {} kept, {} pruned as DTD-unsatisfiable",
            prune.total,
            prune.kept(),
            prune.pruned.len()
        );
        for (role, path) in &prune.pruned {
            println!("  pruned {role}: {path}");
        }
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let (query_text, rest) = take_query(args)?;
    let flags: Vec<&str> = rest.iter().map(String::as_str).collect();
    let schema = take_schema(&flags)?;
    let q = CompiledQuery::compile(&query_text).map_err(|e| e.to_string())?;
    let a = gcx_analyze::analyze_program(&q.program, schema.as_deref());
    if flags.contains(&"--json") {
        println!("{}", a.to_json());
    } else {
        print!("{}", a.text());
    }
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let (query_text, rest) = take_query(args)?;
    let input_path = rest.first().ok_or("missing input document")?;
    let every = rest
        .iter()
        .position(|f| f == "--every")
        .and_then(|i| rest.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(1);
    let q = CompiledQuery::compile(&query_text).map_err(|e| e.to_string())?;
    let input = open_input(input_path)?;
    let report = gcx_core::run(
        &q,
        &EngineOptions::gcx().with_timeline(every),
        input,
        std::io::sink(),
    )
    .map_err(|e| e.to_string())?;
    let tl = report.timeline.expect("timeline enabled");
    let mut out = BufWriter::new(std::io::stdout().lock());
    writeln!(out, "tokens,buffered_nodes").unwrap();
    for (t, n) in &tl.points {
        writeln!(out, "{t},{n}").unwrap();
    }
    eprintln!("peak buffered nodes: {}", tl.peak());
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let mb: u64 = args
        .first()
        .ok_or("missing size in MB")?
        .parse()
        .map_err(|_| "size must be a number (MB)")?;
    let seed = args
        .iter()
        .position(|f| f == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok());
    let mut cfg = gcx_xmark::XmarkConfig::sized(mb * 1024 * 1024);
    if let Some(s) = seed {
        cfg.seed = s;
    }
    cfg.doctype = args.iter().any(|f| f == "--doctype");
    let written = match args.get(1).filter(|a| !a.starts_with("--")) {
        Some(path) => {
            let f = BufWriter::new(
                std::fs::File::create(path).map_err(|e| format!("cannot create `{path}`: {e}"))?,
            );
            gcx_xmark::generate(&cfg, f).map_err(|e| e.to_string())?
        }
        None => {
            let out = BufWriter::new(std::io::stdout().lock());
            gcx_xmark::generate(&cfg, out).map_err(|e| e.to_string())?
        }
    };
    eprintln!("wrote {written} bytes");
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing input document")?;
    let input = open_input(path)?;
    let mut t = gcx_xml::Tokenizer::new(input);
    match t.validate_to_end() {
        Ok(tokens) => {
            eprintln!("well-formed ({tokens} tokens)");
            Ok(())
        }
        Err(e) => Err(format!("not well-formed: {e}")),
    }
}
