//! `gcx bench` — reproducible throughput baselines.
//!
//! `gcx bench throughput` sweeps the 11 paper queries (XMark Q1/Q6/Q8/Q13/
//! Q20, the extra adaptations Q2/Q3/Q14/Q17/Q19, and the aggregation
//! extension Q6_COUNT) over a generated XMark document, both standalone
//! (one engine run per query) and batched (one shared-stream pass), and
//! writes `BENCH_throughput.json`: MB/s, tokens/s, peak buffered nodes,
//! peak heap bytes and allocation counts (via the `gcx-memtrack` global
//! allocator installed by the binary). Single and batch outputs are
//! cross-checked byte-for-byte, so the numbers can't drift from the
//! semantics. This file is the start of the repository's performance
//! trajectory: CI regenerates it (in `--smoke` form) on every push.

use gcx_core::{CompiledQuery, EngineOptions};
use std::io::Write;
use std::time::Instant;

/// One measured standalone run.
struct SingleRun {
    name: &'static str,
    elapsed_ms: f64,
    tokens: u64,
    peak_buffered_nodes: u64,
    peak_buffer_bytes: u64,
    output_bytes: u64,
    peak_heap_bytes: u64,
    allocs: u64,
}

/// One query's best schema-aware run, for the `schema` column of
/// `BENCH_throughput.json`.
struct SchemaRun {
    elapsed_ms: f64,
    peak_buffer_bytes: u64,
    early_scan_ends: u64,
    early_signoffs: u64,
    pruned_paths: u32,
}

use gcx_xmark::queries::paper_queries;

/// Entry point for `gcx bench <mode> [flags]`.
pub fn cmd_bench(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("throughput") => cmd_throughput(&args[1..]),
        Some("serve") => cmd_serve_bench(&args[1..]),
        Some("obs-overhead") => cmd_obs_overhead(&args[1..]),
        Some(other) => Err(format!(
            "unknown bench mode `{other}` (try `throughput`, `serve` or `obs-overhead`)"
        )),
        None => Err("missing bench mode (try `gcx bench throughput`)".into()),
    }
}

pub(crate) fn flag_value<'a>(flags: &'a [&str], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .position(|f| *f == name)
        .and_then(|i| flags.get(i + 1).copied())
}

/// The Q8 perf-gate floor shared by `bench throughput` and `bench
/// obs-overhead`: an explicit `--min-q8-mbs N` wins; otherwise `--smoke`
/// enables the default 20 MB/s floor and a full run disables the gate.
/// Unoptimized Q8 runs well under 10 MB/s even on a 1MB smoke doc; the
/// joined plan clears 20 MB/s with a wide margin on any release build.
fn min_q8_mbs(flags: &[&str], smoke: bool) -> Result<f64, String> {
    match flag_value(flags, "--min-q8-mbs") {
        Some(v) => v
            .parse()
            .map_err(|_| "--min-q8-mbs must be a number".into()),
        None => Ok(if smoke { 20.0 } else { 0.0 }),
    }
}

/// Apply the Q8 floor: a regression of the hash-join rewrite (or the VM
/// hot path under it) fails the build instead of shipping a quadratic
/// plan. A floor of 0 (full runs without the flag) disables the gate.
fn enforce_q8_floor(q8_mbs: f64, floor: f64) -> Result<(), String> {
    if floor <= 0.0 {
        return Ok(());
    }
    if q8_mbs < floor {
        return Err(format!(
            "perf gate: Q8 ran at {q8_mbs:.1} MB/s, below the {floor:.1} MB/s floor \
             (join rewrite regressed?)"
        ));
    }
    eprintln!("perf gate: Q8 {q8_mbs:.1} MB/s >= {floor:.1} MB/s floor");
    Ok(())
}

fn cmd_throughput(args: &[String]) -> Result<(), String> {
    let flags: Vec<&str> = args.iter().map(String::as_str).collect();
    let smoke = flags.contains(&"--smoke");
    let mb: u64 = match flag_value(&flags, "--mb") {
        Some(v) => v.parse().map_err(|_| "--mb must be a number")?,
        None => {
            if smoke {
                1
            } else {
                16
            }
        }
    };
    let iters: u32 = match flag_value(&flags, "--iters") {
        Some(v) => v.parse().map_err(|_| "--iters must be a number")?,
        None => {
            if smoke {
                1
            } else {
                3
            }
        }
    };
    let seed: u64 = match flag_value(&flags, "--seed") {
        Some(v) => v.parse().map_err(|_| "--seed must be a number")?,
        None => 42,
    };
    let out_path = flag_value(&flags, "--out").unwrap_or("BENCH_throughput.json");
    let q8_floor = min_q8_mbs(&flags, smoke)?;

    // Generate the document in memory: benchmark numbers must not include
    // disk I/O variance.
    eprintln!("generating ~{mb}MB XMark document (seed {seed}) ...");
    let mut cfg = gcx_xmark::XmarkConfig::sized(mb * 1024 * 1024);
    cfg.seed = seed;
    let mut doc = Vec::new();
    gcx_xmark::generate(&cfg, &mut doc).map_err(|e| e.to_string())?;
    let doc_bytes = doc.len() as u64;
    let doc_mb = doc_bytes as f64 / (1024.0 * 1024.0);

    let named = paper_queries();
    let mut queries = Vec::with_capacity(named.len());
    for (name, text) in &named {
        queries.push(CompiledQuery::compile(text).map_err(|e| format!("{name}: {e}"))?);
    }
    let opts = EngineOptions::gcx();

    // ---- single-query sweep -------------------------------------------------
    let mut singles: Vec<SingleRun> = Vec::with_capacity(named.len());
    let mut single_outputs: Vec<Vec<u8>> = Vec::with_capacity(named.len());
    let mut single_total_ms = 0.0f64;
    for ((name, _), q) in named.iter().zip(&queries) {
        let mut best: Option<SingleRun> = None;
        let mut kept_output = Vec::new();
        for _ in 0..iters {
            let mut out = Vec::new();
            gcx_memtrack::reset_peak();
            let heap0 = gcx_memtrack::live_bytes();
            let allocs0 = gcx_memtrack::total_allocs();
            let start = Instant::now();
            let report = gcx_core::run(q, &opts, std::io::Cursor::new(&doc[..]), &mut out)
                .map_err(|e| format!("{name}: {e}"))?;
            let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
            let run = SingleRun {
                name,
                elapsed_ms,
                tokens: report.tokens,
                peak_buffered_nodes: report.buffer.peak_live,
                peak_buffer_bytes: report.buffer.peak_live_bytes,
                output_bytes: report.output_bytes,
                peak_heap_bytes: gcx_memtrack::peak_bytes().saturating_sub(heap0),
                allocs: gcx_memtrack::total_allocs() - allocs0,
            };
            if best
                .as_ref()
                .map(|b| run.elapsed_ms < b.elapsed_ms)
                .unwrap_or(true)
            {
                best = Some(run);
            }
            kept_output = out;
        }
        let best = best.expect("iters >= 1");
        eprintln!(
            "  {:<9} {:>8.1}ms  {:>7.1} MB/s  {:>6} peak nodes  {:>9} allocs",
            best.name,
            best.elapsed_ms,
            doc_mb / (best.elapsed_ms / 1e3),
            best.peak_buffered_nodes,
            best.allocs,
        );
        single_total_ms += best.elapsed_ms;
        singles.push(best);
        single_outputs.push(kept_output);
    }

    // ---- batched shared-stream pass ----------------------------------------
    // Prepared once: the iteration loop measures evaluation, not the
    // per-batch NFA merge (which the plan caches across runs).
    let batch_run = gcx_multi::SharedRun::new(gcx_multi::BatchOptions::default());
    let batch_plan = batch_run.prepare(&queries);
    let mut batch_best_ms = f64::MAX;
    let mut batch_report = None;
    for _ in 0..iters {
        let start = Instant::now();
        let report = batch_run
            .run_prepared(&batch_plan, &queries, std::io::Cursor::new(&doc[..]))
            .map_err(|e| e.to_string())?;
        let ms = start.elapsed().as_secs_f64() * 1e3;
        if ms < batch_best_ms {
            batch_best_ms = ms;
            batch_report = Some(report);
        }
    }
    let batch_report = batch_report.expect("iters >= 1");

    // Byte-identical cross-check: the batch outputs are the oracle for the
    // single runs (and vice versa).
    let mut outputs_match = true;
    for (i, run) in batch_report.queries.iter().enumerate() {
        if run.output != single_outputs[i] {
            outputs_match = false;
            eprintln!(
                "WARNING: batch output of {} differs from standalone!",
                singles[i].name
            );
        }
    }

    // ---- telemetry on/off delta ---------------------------------------------
    // One extra off/on sweep pair, recorded alongside the baseline so the
    // observability cost is a tracked number, not a claim.
    let obs = measure_obs_overhead(&named, &queries, &doc, iters)?;
    eprintln!(
        "obs overhead: telemetry off {:.1}ms vs on {:.1}ms ({:+.2}% when enabled)",
        obs.off_ms,
        obs.on_ms,
        obs.delta_pct(),
    );

    // ---- schema on/off comparison -------------------------------------------
    // Same document, same queries, but the engine is told the input is
    // XMark-DTD-valid. Outputs must stay byte-identical and buffer peaks
    // may only shrink — recorded per query and enforced here.
    let schema_opts = {
        let mut o = EngineOptions::gcx();
        o.schema = Some(gcx_schema::Dtd::xmark());
        o
    };
    let mut schema_runs: Vec<SchemaRun> = Vec::with_capacity(named.len());
    let mut schema_ok = true;
    for (i, ((name, _), q)) in named.iter().zip(&queries).enumerate() {
        let mut best: Option<SchemaRun> = None;
        for _ in 0..iters {
            let mut out = Vec::new();
            let start = Instant::now();
            let report = gcx_core::run(q, &schema_opts, std::io::Cursor::new(&doc[..]), &mut out)
                .map_err(|e| format!("{name} (schema): {e}"))?;
            let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
            if out != single_outputs[i] {
                schema_ok = false;
                eprintln!("WARNING: {name}: --schema changed the output!");
            }
            if report.buffer.peak_live_bytes > singles[i].peak_buffer_bytes {
                schema_ok = false;
                eprintln!(
                    "WARNING: {name}: --schema raised the buffer peak ({} > {} bytes)!",
                    report.buffer.peak_live_bytes, singles[i].peak_buffer_bytes
                );
            }
            let s = report.schema.as_ref().expect("schema report present");
            let run = SchemaRun {
                elapsed_ms,
                peak_buffer_bytes: report.buffer.peak_live_bytes,
                early_scan_ends: s.early_scan_ends,
                early_signoffs: s.early_signoffs,
                pruned_paths: s.pruned_paths,
            };
            if best
                .as_ref()
                .map(|b| run.elapsed_ms < b.elapsed_ms)
                .unwrap_or(true)
            {
                best = Some(run);
            }
        }
        schema_runs.push(best.expect("iters >= 1"));
    }
    let strictly_lower = singles
        .iter()
        .zip(&schema_runs)
        .filter(|(s, r)| r.peak_buffer_bytes < s.peak_buffer_bytes)
        .count();
    eprintln!(
        "schema sweep: outputs {}  peak strictly lower on {}/{} queries",
        if schema_ok {
            "byte-identical"
        } else {
            "MISMATCH"
        },
        strictly_lower,
        named.len(),
    );

    // ---- partition-parallel sweep -------------------------------------------
    // `--threads N` re-runs every query through `gcx_par::run_parallel`:
    // outputs must stay byte-identical to the standalone sweep, and the
    // per-query wall-clock, speedup, taken path and shard count are
    // recorded under `parallel`. The `cpus` field keeps the numbers
    // honest — a 4-thread sweep on a 1-core box measures overhead, not
    // speedup.
    let par_threads: usize = match flag_value(&flags, "--threads") {
        Some(v) => v
            .parse()
            .ok()
            .filter(|&t| t > 0)
            .ok_or("--threads must be a positive number")?,
        None => 0,
    };
    let mut par_json = String::new();
    let mut par_ok = true;
    if par_threads > 1 {
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let par_opts = gcx_par::ParOptions::with_threads(par_threads);
        par_json =
            format!(",\"parallel\":{{\"threads\":{par_threads},\"cpus\":{cpus},\"queries\":[");
        for (i, ((name, _), q)) in named.iter().zip(&queries).enumerate() {
            let mut best_ms = f64::MAX;
            let mut last = None;
            for _ in 0..iters {
                let start = Instant::now();
                let outcome = gcx_par::run_parallel(q, &opts, &par_opts, &doc)
                    .map_err(|e| format!("{name} (parallel): {e}"))?;
                best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
                last = Some(outcome);
            }
            let outcome = last.expect("iters >= 1");
            if outcome.output != single_outputs[i] {
                par_ok = false;
                eprintln!("WARNING: {name}: --threads changed the output!");
            }
            let speedup = singles[i].elapsed_ms / best_ms;
            eprintln!(
                "  {:<9} {:>8.1}ms  {:>5.2}x vs serial  path {:<9} {} shards",
                name,
                best_ms,
                speedup,
                outcome.path.as_str(),
                outcome.shards,
            );
            if i > 0 {
                par_json.push(',');
            }
            par_json.push_str(&format!(
                "{{\"name\":\"{name}\",\"elapsed_ms\":{best_ms:.3},\"mb_per_s\":{:.3},\
                 \"speedup\":{speedup:.3},\"shard_path\":\"{}\",\"shards\":{}}}",
                doc_mb / (best_ms / 1e3),
                outcome.path.as_str(),
                outcome.shards,
            ));
        }
        par_json.push_str(&format!("],\"outputs_match\":{par_ok}}}"));
    }

    let tokens = singles.first().map(|s| s.tokens).unwrap_or(0);
    // Per-query average throughput: doc_mb per mean per-query time.
    let single_mb_s = doc_mb * named.len() as f64 / (single_total_ms / 1e3);
    eprintln!(
        "single sweep: {:.1}ms total ({:.1} MB/s avg per query)  batch: {:.1}ms ({:.1} MB/s, share {:.2}x)  outputs {}",
        single_total_ms,
        single_mb_s,
        batch_best_ms,
        doc_mb / (batch_best_ms / 1e3),
        batch_report.share_factor(),
        if outputs_match { "byte-identical" } else { "MISMATCH" },
    );

    // ---- JSON report --------------------------------------------------------
    let mut json = String::with_capacity(4096);
    json.push_str(&format!(
        "{{\"doc\":{{\"mb\":{mb},\"bytes\":{doc_bytes},\"seed\":{seed},\"tokens\":{tokens}}},\
         \"iters\":{iters},\"smoke\":{smoke},\"single\":["
    ));
    for (i, s) in singles.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"name\":\"{}\",\"elapsed_ms\":{:.3},\"mb_per_s\":{:.3},\"tokens_per_s\":{:.0},\
             \"peak_buffered_nodes\":{},\"peak_buffer_bytes\":{},\"output_bytes\":{},\
             \"peak_heap_bytes\":{},\"allocs\":{},\"allocs_per_token\":{:.6}}}",
            s.name,
            s.elapsed_ms,
            doc_mb / (s.elapsed_ms / 1e3),
            s.tokens as f64 / (s.elapsed_ms / 1e3),
            s.peak_buffered_nodes,
            s.peak_buffer_bytes,
            s.output_bytes,
            s.peak_heap_bytes,
            s.allocs,
            s.allocs as f64 / s.tokens.max(1) as f64,
        ));
    }
    json.push_str(&format!(
        "],\"single_total\":{{\"elapsed_ms\":{:.3},\"mb_per_s\":{:.3}}},\
         \"batch\":{{\"elapsed_ms\":{:.3},\"mb_per_s\":{:.3},\"tokens\":{},\"fanout_events\":{},\
         \"share_factor\":{:.3},\"outputs_match\":{}}},\"obs_overhead\":{}",
        single_total_ms,
        doc_mb / (single_total_ms / 1e3),
        batch_best_ms,
        doc_mb / (batch_best_ms / 1e3),
        batch_report.tokens,
        batch_report.fanout_events,
        batch_report.share_factor(),
        outputs_match,
        obs.to_json(),
    ));
    json.push_str(&format!(
        ",\"schema\":{{\"invariants_hold\":{schema_ok},\
         \"peaks_strictly_lower\":{strictly_lower},\"queries\":["
    ));
    for (i, (s, r)) in singles.iter().zip(&schema_runs).enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"name\":\"{}\",\"elapsed_ms\":{:.3},\"mb_per_s\":{:.3},\
             \"peak_buffer_bytes_off\":{},\"peak_buffer_bytes_on\":{},\
             \"pruned_paths\":{},\"early_scan_ends\":{},\"early_signoffs\":{}}}",
            s.name,
            r.elapsed_ms,
            doc_mb / (r.elapsed_ms / 1e3),
            s.peak_buffer_bytes,
            r.peak_buffer_bytes,
            r.pruned_paths,
            r.early_scan_ends,
            r.early_signoffs,
        ));
    }
    json.push_str("]}");
    json.push_str(&par_json);
    json.push('}');

    let mut f =
        std::fs::File::create(out_path).map_err(|e| format!("cannot create `{out_path}`: {e}"))?;
    f.write_all(json.as_bytes())
        .and_then(|()| f.write_all(b"\n"))
        .map_err(|e| format!("cannot write `{out_path}`: {e}"))?;
    eprintln!("wrote {out_path}");
    if !outputs_match {
        return Err("batch and standalone outputs differ".into());
    }
    if !schema_ok {
        return Err("--schema changed an output or raised a buffer peak".into());
    }
    if !par_ok {
        return Err("--threads changed an output".into());
    }
    let q8 = singles
        .iter()
        .find(|s| s.name == "Q8")
        .ok_or("Q8 missing from the sweep")?;
    enforce_q8_floor(doc_mb / (q8.elapsed_ms / 1e3), q8_floor)
}

// ---- `gcx bench obs-overhead`: the cost of telemetry ------------------------

/// Result of sweeping the paper queries with telemetry off vs on.
struct ObsOverhead {
    off_ms: f64,
    on_ms: f64,
    /// Q8's telemetry-off time, feeding the shared Q8 perf gate.
    q8_off_ms: f64,
    outputs_match: bool,
    peaks_match: bool,
}

impl ObsOverhead {
    fn delta_pct(&self) -> f64 {
        if self.off_ms <= 0.0 {
            0.0
        } else {
            (self.on_ms - self.off_ms) / self.off_ms * 100.0
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"telemetry_off_ms\":{:.3},\"telemetry_on_ms\":{:.3},\
             \"enabled_overhead_pct\":{:.2},\"outputs_match\":{},\"peaks_match\":{}}}",
            self.off_ms,
            self.on_ms,
            self.delta_pct(),
            self.outputs_match,
            self.peaks_match,
        )
    }
}

/// Sweep every query twice with the same harness — `telemetry: false`
/// then `telemetry: true` — best-of-`iters` per mode, and cross-check
/// that telemetry changed nothing observable: outputs byte-identical,
/// buffer peaks exactly equal. The off-mode sweep is directly
/// comparable to `single_total.elapsed_ms` of earlier baselines, so
/// the *disabled*-hook overhead shows up as drift of that number.
fn measure_obs_overhead(
    named: &[(&'static str, &'static str)],
    queries: &[CompiledQuery],
    doc: &[u8],
    iters: u32,
) -> Result<ObsOverhead, String> {
    let mut totals = [0.0f64; 2];
    let mut q8_off_ms = 0.0f64;
    let mut outputs_match = true;
    let mut peaks_match = true;
    for ((name, _), q) in named.iter().zip(queries) {
        let mut kept: Vec<(Vec<u8>, u64)> = Vec::with_capacity(2);
        for (mode, telemetry) in [false, true].into_iter().enumerate() {
            let mut opts = EngineOptions::gcx();
            opts.telemetry = telemetry;
            let mut best = f64::MAX;
            let mut last = (Vec::new(), 0u64);
            for _ in 0..iters {
                let mut out = Vec::new();
                let start = Instant::now();
                let report = gcx_core::run(q, &opts, std::io::Cursor::new(doc), &mut out)
                    .map_err(|e| format!("{name}: {e}"))?;
                best = best.min(start.elapsed().as_secs_f64() * 1e3);
                last = (out, report.buffer.peak_live_bytes);
            }
            totals[mode] += best;
            if *name == "Q8" && mode == 0 {
                q8_off_ms = best;
            }
            kept.push(last);
        }
        if kept[0].0 != kept[1].0 {
            outputs_match = false;
            eprintln!("WARNING: {name}: telemetry changed the output!");
        }
        if kept[0].1 != kept[1].1 {
            peaks_match = false;
            eprintln!(
                "WARNING: {name}: telemetry changed the buffer peak ({} vs {} bytes)!",
                kept[0].1, kept[1].1
            );
        }
    }
    Ok(ObsOverhead {
        off_ms: totals[0],
        on_ms: totals[1],
        q8_off_ms,
        outputs_match,
        peaks_match,
    })
}

/// `gcx bench obs-overhead`: how much engine telemetry costs when it is
/// actually on, and proof that it is inert when off (outputs and peaks
/// identical either way). Writes `BENCH_obs_overhead.json`.
fn cmd_obs_overhead(args: &[String]) -> Result<(), String> {
    let flags: Vec<&str> = args.iter().map(String::as_str).collect();
    let smoke = flags.contains(&"--smoke");
    let mb: u64 = match flag_value(&flags, "--mb") {
        Some(v) => v.parse().map_err(|_| "--mb must be a number")?,
        None => {
            if smoke {
                1
            } else {
                16
            }
        }
    };
    let iters: u32 = match flag_value(&flags, "--iters") {
        Some(v) => v.parse().map_err(|_| "--iters must be a number")?,
        None => {
            if smoke {
                1
            } else {
                3
            }
        }
    };
    let seed: u64 = match flag_value(&flags, "--seed") {
        Some(v) => v.parse().map_err(|_| "--seed must be a number")?,
        None => 42,
    };
    let out_path = flag_value(&flags, "--out").unwrap_or("BENCH_obs_overhead.json");
    let q8_floor = min_q8_mbs(&flags, smoke)?;

    eprintln!("generating ~{mb}MB XMark document (seed {seed}) ...");
    let mut cfg = gcx_xmark::XmarkConfig::sized(mb * 1024 * 1024);
    cfg.seed = seed;
    let mut doc = Vec::new();
    gcx_xmark::generate(&cfg, &mut doc).map_err(|e| e.to_string())?;

    let named = paper_queries();
    let mut queries = Vec::with_capacity(named.len());
    for (name, text) in &named {
        queries.push(CompiledQuery::compile(text).map_err(|e| format!("{name}: {e}"))?);
    }
    let o = measure_obs_overhead(&named, &queries, &doc, iters)?;
    eprintln!(
        "telemetry off: {:.1}ms   on: {:.1}ms   enabled overhead: {:+.2}%   outputs {}  peaks {}",
        o.off_ms,
        o.on_ms,
        o.delta_pct(),
        if o.outputs_match {
            "identical"
        } else {
            "MISMATCH"
        },
        if o.peaks_match {
            "identical"
        } else {
            "MISMATCH"
        },
    );

    let json = format!(
        "{{\"doc\":{{\"mb\":{mb},\"bytes\":{},\"seed\":{seed}}},\"iters\":{iters},\
         \"smoke\":{smoke},\"obs_overhead\":{}}}",
        doc.len(),
        o.to_json(),
    );
    let mut f =
        std::fs::File::create(out_path).map_err(|e| format!("cannot create `{out_path}`: {e}"))?;
    f.write_all(json.as_bytes())
        .and_then(|()| f.write_all(b"\n"))
        .map_err(|e| format!("cannot write `{out_path}`: {e}"))?;
    eprintln!("wrote {out_path}");
    if !(o.outputs_match && o.peaks_match) {
        return Err("telemetry must not change outputs or buffer peaks".into());
    }
    let doc_mb = doc.len() as f64 / (1024.0 * 1024.0);
    enforce_q8_floor(doc_mb / (o.q8_off_ms / 1e3), q8_floor)
}

// ---- `gcx bench serve`: the service load generator --------------------------

/// Per-query lowering/setup measurements for the `bench serve` report.
struct LoweringRow {
    name: &'static str,
    compile_micros: u64,
    instructions: usize,
    steps: usize,
    matcher_paths: usize,
    symbols: usize,
    shared_setup_micros: f64,
    recompile_setup_micros: f64,
}

/// Median wall-clock of `iters` runs of `f`, in microseconds.
fn median_micros(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Measure per-request setup with the shared program vs. recompiling per
/// request, over a minimal document (so data streaming is negligible and
/// the fixed per-request cost dominates).
fn measure_lowering(
    named: &[(&'static str, &'static str)],
    compiled: &[CompiledQuery],
) -> Vec<LoweringRow> {
    const TINY_DOC: &[u8] = b"<site></site>";
    named
        .iter()
        .zip(compiled)
        .map(|(&(name, text), q)| {
            let opts = EngineOptions::gcx();
            let shared_setup_micros = median_micros(64, || {
                let mut out = Vec::new();
                gcx_core::run(q, &opts, TINY_DOC, &mut out).expect("tiny run");
            });
            let recompile_setup_micros = median_micros(16, || {
                let fresh = CompiledQuery::compile(text).expect("recompile");
                let mut out = Vec::new();
                gcx_core::run(&fresh, &opts, TINY_DOC, &mut out).expect("tiny run");
            });
            let st = q.program.stats();
            LoweringRow {
                name,
                compile_micros: q.compile_micros,
                instructions: st.instructions,
                steps: st.steps,
                matcher_paths: st.matcher_paths,
                symbols: st.symbols,
                shared_setup_micros,
                recompile_setup_micros,
            }
        })
        .collect()
}

/// One client-side observation: (query index, output mismatch flag,
/// server peak nodes, server peak bytes, response bytes, elapsed ms).
type ClientRow = (usize, u64, u64, u64, u64, f64);

/// Aggregated measurements for one query under load.
struct QueryLoad {
    name: &'static str,
    requests: u64,
    mismatches: u64,
    server_peak_nodes: u64,
    offline_peak_nodes: u64,
    server_peak_bytes: u64,
    offline_peak_bytes: u64,
    output_bytes: u64,
    total_ms: f64,
}

/// `gcx bench serve`: start an in-process service, register the 11 paper
/// queries, drive them with N concurrent clients, and hold the service to
/// the offline engine's contract — byte-identical bodies and *exactly*
/// matching buffer peaks (same engine, same document, so stats noise is
/// zero by construction). Also demonstrates the admission-control paths:
/// one deliberately under-budgeted request must bounce with 413 without
/// disturbing its peers. Writes `BENCH_server.json`.
fn cmd_serve_bench(args: &[String]) -> Result<(), String> {
    use gcx_server::client::{self, BodyMode};

    let flags: Vec<&str> = args.iter().map(String::as_str).collect();
    let smoke = flags.contains(&"--smoke");
    let mb: u64 = match flag_value(&flags, "--mb") {
        Some(v) => v.parse().map_err(|_| "--mb must be a number")?,
        None => {
            if smoke {
                1
            } else {
                16
            }
        }
    };
    let clients: usize = match flag_value(&flags, "--clients") {
        Some(v) => v.parse().map_err(|_| "--clients must be a number")?,
        None => 4,
    };
    let seed: u64 = match flag_value(&flags, "--seed") {
        Some(v) => v.parse().map_err(|_| "--seed must be a number")?,
        None => 42,
    };
    let out_path = flag_value(&flags, "--out").unwrap_or("BENCH_server.json");

    eprintln!("generating ~{mb}MB XMark document (seed {seed}) ...");
    let mut cfg = gcx_xmark::XmarkConfig::sized(mb * 1024 * 1024);
    cfg.seed = seed;
    let mut doc = Vec::new();
    gcx_xmark::generate(&cfg, &mut doc).map_err(|e| e.to_string())?;
    let doc_bytes = doc.len() as u64;
    let doc_mb = doc_bytes as f64 / (1024.0 * 1024.0);

    // Offline oracle: output bytes and buffer peaks per query.
    let named = paper_queries();
    eprintln!("computing offline oracle for {} queries ...", named.len());
    let opts = EngineOptions::gcx();
    let mut compiled: Vec<CompiledQuery> = Vec::with_capacity(named.len());
    let mut oracle: Vec<(Vec<u8>, u64, u64)> = Vec::with_capacity(named.len());
    for (name, text) in &named {
        let q = CompiledQuery::compile(text).map_err(|e| format!("{name}: {e}"))?;
        let mut out = Vec::new();
        let report = gcx_core::run(&q, &opts, std::io::Cursor::new(&doc[..]), &mut out)
            .map_err(|e| format!("{name}: {e}"))?;
        oracle.push((out, report.buffer.peak_live, report.buffer.peak_live_bytes));
        compiled.push(q);
    }

    // Per-request lowering overhead: what a request pays before any data
    // streams. `shared_setup` runs the pre-lowered program over a minimal
    // document (matcher-frame instantiation + pre-interned symbol clone —
    // the post-gcx-ir hot path); `recompile_setup` additionally re-runs
    // the whole compilation pipeline per request (the cost the service
    // paid back when only parsing was amortized, now visible for the
    // before/after comparison in the committed baseline).
    let lowering = measure_lowering(&named, &compiled);

    // The service under test, on a loopback ephemeral port.
    let handle = gcx_server::serve(gcx_server::ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: clients.max(1),
        queue_depth: 2 * clients.max(1),
        ..gcx_server::ServerConfig::default()
    })
    .map_err(|e| format!("cannot start server: {e}"))?;
    let addr = handle.addr();
    for (name, text) in &named {
        let r = client::put_query(addr, name, text).map_err(|e| e.to_string())?;
        if r.status != 201 {
            return Err(format!(
                "registering {name} failed: {} {}",
                r.status,
                String::from_utf8_lossy(&r.body)
            ));
        }
    }

    // Load phase: each client walks all queries once, chunked uploads on
    // odd clients (both wire framings stay exercised).
    eprintln!(
        "load: {} clients x {} queries over {:.1}MB ...",
        clients,
        named.len(),
        doc_mb
    );
    let started = Instant::now();
    let per_client: Vec<Vec<ClientRow>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(clients);
        for c in 0..clients {
            let doc = &doc;
            let named = &named;
            let oracle = &oracle;
            handles.push(scope.spawn(move || {
                let mode = if c % 2 == 1 {
                    BodyMode::Chunked {
                        chunk_size: 256 * 1024,
                    }
                } else {
                    BodyMode::Sized
                };
                let mut rows = Vec::with_capacity(named.len());
                for qi in 0..named.len() {
                    // Stagger start positions so queries overlap.
                    let qi = (qi + c) % named.len();
                    let (name, _) = named[qi];
                    let t0 = Instant::now();
                    let r = client::eval(addr, name, doc, &[], mode)
                        .unwrap_or_else(|e| panic!("client {c} eval {name}: {e}"));
                    let ms = t0.elapsed().as_secs_f64() * 1e3;
                    assert_eq!(r.status, 200, "client {c} {name}: {r:?}");
                    let ok = r.body == oracle[qi].0;
                    rows.push((
                        qi,
                        u64::from(!ok),
                        r.trailer_u64("x-gcx-peak-buffered-nodes").unwrap_or(0),
                        r.trailer_u64("x-gcx-peak-buffer-bytes").unwrap_or(0),
                        r.body.len() as u64,
                        ms,
                    ));
                }
                rows
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("client panicked"))
            .collect()
    });
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;

    let mut loads: Vec<QueryLoad> = named
        .iter()
        .zip(&oracle)
        .map(|((name, _), (out, peak_nodes, peak_bytes))| QueryLoad {
            name,
            requests: 0,
            mismatches: 0,
            server_peak_nodes: 0,
            offline_peak_nodes: *peak_nodes,
            server_peak_bytes: 0,
            offline_peak_bytes: *peak_bytes,
            output_bytes: out.len() as u64,
            total_ms: 0.0,
        })
        .collect();
    for rows in &per_client {
        for &(qi, mismatch, peak_nodes, peak_bytes, _out, ms) in rows {
            let l = &mut loads[qi];
            l.requests += 1;
            l.mismatches += mismatch;
            l.server_peak_nodes = l.server_peak_nodes.max(peak_nodes);
            l.server_peak_bytes = l.server_peak_bytes.max(peak_bytes);
            l.total_ms += ms;
        }
    }

    // The memory contract and the byte-identity cross-check.
    let mut failures = Vec::new();
    for l in &loads {
        let peak_match = l.server_peak_nodes == l.offline_peak_nodes
            && l.server_peak_bytes == l.offline_peak_bytes;
        eprintln!(
            "  {:<9} {:>2} reqs  {:>8.1}ms mean  {:>8} peak nodes (offline {:>8})  {}",
            l.name,
            l.requests,
            l.total_ms / l.requests.max(1) as f64,
            l.server_peak_nodes,
            l.offline_peak_nodes,
            if l.mismatches == 0 && peak_match {
                "ok"
            } else {
                "FAIL"
            },
        );
        if l.mismatches > 0 {
            failures.push(format!("{}: {} output mismatches", l.name, l.mismatches));
        }
        if !peak_match {
            failures.push(format!(
                "{}: server buffer peak {}/{}B != offline {}/{}B",
                l.name,
                l.server_peak_nodes,
                l.server_peak_bytes,
                l.offline_peak_nodes,
                l.offline_peak_bytes
            ));
        }
    }

    // Admission-control demo: an absurdly small budget must be bounced
    // with 413, and the service must keep answering afterwards.
    let capped = client::eval(
        addr,
        named[0].0,
        &doc,
        &[("X-Gcx-Max-Buffer-Bytes", "256")],
        BodyMode::Sized,
    )
    .map_err(|e| format!("cap demo: {e}"))?;
    if capped.status != 413 {
        failures.push(format!("cap demo: expected 413, got {}", capped.status));
    }
    let after = client::get(addr, "/healthz").map_err(|e| e.to_string())?;
    if after.status != 200 {
        failures.push(format!("post-413 health check failed: {}", after.status));
    }
    let stats = client::get(addr, "/stats").map_err(|e| e.to_string())?;
    handle.shutdown();

    let total_requests: u64 = loads.iter().map(|l| l.requests).sum();
    let aggregate_mb_s = doc_mb * total_requests as f64 / (elapsed_ms / 1e3);
    let shared_mean =
        lowering.iter().map(|l| l.shared_setup_micros).sum::<f64>() / lowering.len().max(1) as f64;
    let recompile_mean = lowering
        .iter()
        .map(|l| l.recompile_setup_micros)
        .sum::<f64>()
        / lowering.len().max(1) as f64;
    eprintln!(
        "per-request setup (tiny doc, mean of per-query medians): {shared_mean:.0}us \
         shared program vs {recompile_mean:.0}us recompiling per request",
    );
    eprintln!(
        "served {} requests in {:.1}ms ({:.1} MB/s aggregate ingest)  cap demo: {}  {}",
        total_requests,
        elapsed_ms,
        aggregate_mb_s,
        capped.status,
        if failures.is_empty() {
            "all ok"
        } else {
            "FAILURES"
        },
    );

    let mut json = String::with_capacity(4096);
    json.push_str(&format!(
        "{{\"doc\":{{\"mb\":{mb},\"bytes\":{doc_bytes},\"seed\":{seed}}},\
         \"smoke\":{smoke},\"clients\":{clients},\"requests\":{total_requests},\
         \"elapsed_ms\":{elapsed_ms:.3},\"aggregate_ingest_mb_per_s\":{aggregate_mb_s:.3},\
         \"queries\":["
    ));
    for (i, l) in loads.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"name\":\"{}\",\"requests\":{},\"mean_ms\":{:.3},\"output_bytes\":{},\
             \"server_peak_buffered_nodes\":{},\"offline_peak_buffered_nodes\":{},\
             \"server_peak_buffer_bytes\":{},\"offline_peak_buffer_bytes\":{},\
             \"outputs_match\":{},\"peaks_match\":{}}}",
            l.name,
            l.requests,
            l.total_ms / l.requests.max(1) as f64,
            l.output_bytes,
            l.server_peak_nodes,
            l.offline_peak_nodes,
            l.server_peak_bytes,
            l.offline_peak_bytes,
            l.mismatches == 0,
            l.server_peak_nodes == l.offline_peak_nodes
                && l.server_peak_bytes == l.offline_peak_bytes,
        ));
    }
    json.push_str("],\"lowering\":{\"tiny_doc\":\"<site></site>\",\"per_query\":[");
    for (i, l) in lowering.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"name\":\"{}\",\"compile_micros\":{},\"instructions\":{},\"steps\":{},\
             \"matcher_paths\":{},\"symbols\":{},\"shared_setup_micros\":{:.1},\
             \"recompile_setup_micros\":{:.1}}}",
            l.name,
            l.compile_micros,
            l.instructions,
            l.steps,
            l.matcher_paths,
            l.symbols,
            l.shared_setup_micros,
            l.recompile_setup_micros,
        ));
    }
    json.push_str(&format!(
        "]}},\"cap_demo\":{{\"budget_bytes\":256,\"status\":{},\"rejected\":{}}},\
         \"all_ok\":{},\"server_stats\":{}}}",
        capped.status,
        capped.status == 413,
        failures.is_empty(),
        String::from_utf8_lossy(&stats.body),
    ));

    let mut f =
        std::fs::File::create(out_path).map_err(|e| format!("cannot create `{out_path}`: {e}"))?;
    f.write_all(json.as_bytes())
        .and_then(|()| f.write_all(b"\n"))
        .map_err(|e| format!("cannot write `{out_path}`: {e}"))?;
    eprintln!("wrote {out_path}");
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "service contract violated: {}",
            failures.join("; ")
        ))
    }
}
