//! `gcx bench` — reproducible throughput baselines.
//!
//! `gcx bench throughput` sweeps the 11 paper queries (XMark Q1/Q6/Q8/Q13/
//! Q20, the extra adaptations Q2/Q3/Q14/Q17/Q19, and the aggregation
//! extension Q6_COUNT) over a generated XMark document, both standalone
//! (one engine run per query) and batched (one shared-stream pass), and
//! writes `BENCH_throughput.json`: MB/s, tokens/s, peak buffered nodes,
//! peak heap bytes and allocation counts (via the `gcx-memtrack` global
//! allocator installed by the binary). Single and batch outputs are
//! cross-checked byte-for-byte, so the numbers can't drift from the
//! semantics. This file is the start of the repository's performance
//! trajectory: CI regenerates it (in `--smoke` form) on every push.

use gcx_core::{CompiledQuery, EngineOptions};
use std::io::Write;
use std::time::Instant;

/// One measured standalone run.
struct SingleRun {
    name: &'static str,
    elapsed_ms: f64,
    tokens: u64,
    peak_buffered_nodes: u64,
    output_bytes: u64,
    peak_heap_bytes: u64,
    allocs: u64,
}

/// The 11 benchmark queries with their paper names.
fn paper_queries() -> Vec<(&'static str, &'static str)> {
    let mut v: Vec<(&'static str, &'static str)> = gcx_xmark::queries::FIGURE5_QUERIES.to_vec();
    v.extend(gcx_xmark::queries::extra::ALL);
    v.push(("Q6_COUNT", gcx_xmark::queries::Q6_COUNT));
    v
}

/// Entry point for `gcx bench <mode> [flags]`.
pub fn cmd_bench(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("throughput") => cmd_throughput(&args[1..]),
        Some(other) => Err(format!("unknown bench mode `{other}` (try `throughput`)")),
        None => Err("missing bench mode (try `gcx bench throughput`)".into()),
    }
}

fn flag_value<'a>(flags: &'a [&str], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .position(|f| *f == name)
        .and_then(|i| flags.get(i + 1).copied())
}

fn cmd_throughput(args: &[String]) -> Result<(), String> {
    let flags: Vec<&str> = args.iter().map(String::as_str).collect();
    let smoke = flags.contains(&"--smoke");
    let mb: u64 = match flag_value(&flags, "--mb") {
        Some(v) => v.parse().map_err(|_| "--mb must be a number")?,
        None => {
            if smoke {
                1
            } else {
                16
            }
        }
    };
    let iters: u32 = match flag_value(&flags, "--iters") {
        Some(v) => v.parse().map_err(|_| "--iters must be a number")?,
        None => {
            if smoke {
                1
            } else {
                3
            }
        }
    };
    let seed: u64 = match flag_value(&flags, "--seed") {
        Some(v) => v.parse().map_err(|_| "--seed must be a number")?,
        None => 42,
    };
    let out_path = flag_value(&flags, "--out").unwrap_or("BENCH_throughput.json");

    // Generate the document in memory: benchmark numbers must not include
    // disk I/O variance.
    eprintln!("generating ~{mb}MB XMark document (seed {seed}) ...");
    let mut cfg = gcx_xmark::XmarkConfig::sized(mb * 1024 * 1024);
    cfg.seed = seed;
    let mut doc = Vec::new();
    gcx_xmark::generate(&cfg, &mut doc).map_err(|e| e.to_string())?;
    let doc_bytes = doc.len() as u64;
    let doc_mb = doc_bytes as f64 / (1024.0 * 1024.0);

    let named = paper_queries();
    let mut queries = Vec::with_capacity(named.len());
    for (name, text) in &named {
        queries.push(CompiledQuery::compile(text).map_err(|e| format!("{name}: {e}"))?);
    }
    let opts = EngineOptions::gcx();

    // ---- single-query sweep -------------------------------------------------
    let mut singles: Vec<SingleRun> = Vec::with_capacity(named.len());
    let mut single_outputs: Vec<Vec<u8>> = Vec::with_capacity(named.len());
    let mut single_total_ms = 0.0f64;
    for ((name, _), q) in named.iter().zip(&queries) {
        let mut best: Option<SingleRun> = None;
        let mut kept_output = Vec::new();
        for _ in 0..iters {
            let mut out = Vec::new();
            gcx_memtrack::reset_peak();
            let heap0 = gcx_memtrack::live_bytes();
            let allocs0 = gcx_memtrack::total_allocs();
            let start = Instant::now();
            let report = gcx_core::run(q, &opts, std::io::Cursor::new(&doc[..]), &mut out)
                .map_err(|e| format!("{name}: {e}"))?;
            let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
            let run = SingleRun {
                name,
                elapsed_ms,
                tokens: report.tokens,
                peak_buffered_nodes: report.buffer.peak_live,
                output_bytes: report.output_bytes,
                peak_heap_bytes: gcx_memtrack::peak_bytes().saturating_sub(heap0),
                allocs: gcx_memtrack::total_allocs() - allocs0,
            };
            if best
                .as_ref()
                .map(|b| run.elapsed_ms < b.elapsed_ms)
                .unwrap_or(true)
            {
                best = Some(run);
            }
            kept_output = out;
        }
        let best = best.expect("iters >= 1");
        eprintln!(
            "  {:<9} {:>8.1}ms  {:>7.1} MB/s  {:>6} peak nodes  {:>9} allocs",
            best.name,
            best.elapsed_ms,
            doc_mb / (best.elapsed_ms / 1e3),
            best.peak_buffered_nodes,
            best.allocs,
        );
        single_total_ms += best.elapsed_ms;
        singles.push(best);
        single_outputs.push(kept_output);
    }

    // ---- batched shared-stream pass ----------------------------------------
    let batch_opts = gcx_multi::BatchOptions::default();
    let mut batch_best_ms = f64::MAX;
    let mut batch_report = None;
    for _ in 0..iters {
        let start = Instant::now();
        let report = gcx_multi::SharedRun::new(batch_opts.clone())
            .run(&queries, std::io::Cursor::new(&doc[..]))
            .map_err(|e| e.to_string())?;
        let ms = start.elapsed().as_secs_f64() * 1e3;
        if ms < batch_best_ms {
            batch_best_ms = ms;
            batch_report = Some(report);
        }
    }
    let batch_report = batch_report.expect("iters >= 1");

    // Byte-identical cross-check: the batch outputs are the oracle for the
    // single runs (and vice versa).
    let mut outputs_match = true;
    for (i, run) in batch_report.queries.iter().enumerate() {
        if run.output != single_outputs[i] {
            outputs_match = false;
            eprintln!(
                "WARNING: batch output of {} differs from standalone!",
                singles[i].name
            );
        }
    }

    let tokens = singles.first().map(|s| s.tokens).unwrap_or(0);
    // Per-query average throughput: doc_mb per mean per-query time.
    let single_mb_s = doc_mb * named.len() as f64 / (single_total_ms / 1e3);
    eprintln!(
        "single sweep: {:.1}ms total ({:.1} MB/s avg per query)  batch: {:.1}ms ({:.1} MB/s, share {:.2}x)  outputs {}",
        single_total_ms,
        single_mb_s,
        batch_best_ms,
        doc_mb / (batch_best_ms / 1e3),
        batch_report.share_factor(),
        if outputs_match { "byte-identical" } else { "MISMATCH" },
    );

    // ---- JSON report --------------------------------------------------------
    let mut json = String::with_capacity(4096);
    json.push_str(&format!(
        "{{\"doc\":{{\"mb\":{mb},\"bytes\":{doc_bytes},\"seed\":{seed},\"tokens\":{tokens}}},\
         \"iters\":{iters},\"smoke\":{smoke},\"single\":["
    ));
    for (i, s) in singles.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"name\":\"{}\",\"elapsed_ms\":{:.3},\"mb_per_s\":{:.3},\"tokens_per_s\":{:.0},\
             \"peak_buffered_nodes\":{},\"output_bytes\":{},\"peak_heap_bytes\":{},\
             \"allocs\":{},\"allocs_per_token\":{:.6}}}",
            s.name,
            s.elapsed_ms,
            doc_mb / (s.elapsed_ms / 1e3),
            s.tokens as f64 / (s.elapsed_ms / 1e3),
            s.peak_buffered_nodes,
            s.output_bytes,
            s.peak_heap_bytes,
            s.allocs,
            s.allocs as f64 / s.tokens.max(1) as f64,
        ));
    }
    json.push_str(&format!(
        "],\"single_total\":{{\"elapsed_ms\":{:.3},\"mb_per_s\":{:.3}}},\
         \"batch\":{{\"elapsed_ms\":{:.3},\"mb_per_s\":{:.3},\"tokens\":{},\"fanout_events\":{},\
         \"share_factor\":{:.3},\"outputs_match\":{}}}}}",
        single_total_ms,
        doc_mb / (single_total_ms / 1e3),
        batch_best_ms,
        doc_mb / (batch_best_ms / 1e3),
        batch_report.tokens,
        batch_report.fanout_events,
        batch_report.share_factor(),
        outputs_match,
    ));

    let mut f =
        std::fs::File::create(out_path).map_err(|e| format!("cannot create `{out_path}`: {e}"))?;
    f.write_all(json.as_bytes())
        .and_then(|()| f.write_all(b"\n"))
        .map_err(|e| format!("cannot write `{out_path}`: {e}"))?;
    eprintln!("wrote {out_path}");
    if outputs_match {
        Ok(())
    } else {
        Err("batch and standalone outputs differ".into())
    }
}
