//! Chrome trace-event output for `gcx run/multi --trace=FILE`.
//!
//! Builds one trace file from the engine telemetry ([`RunReport::obs`])
//! of one or more runs, loadable in `chrome://tracing` or
//! <https://ui.perfetto.dev>. Each run contributes:
//!
//! * a **feed lane** of `"X"` complete events — one per `feed` call,
//!   on the real process clock (push-mode runs only; the shared-stream
//!   batch has no per-query feed clock);
//! * a **`live_bytes` counter track** — the buffer's byte occupancy
//!   timeline. When feed spans exist the token-indexed samples are
//!   mapped linearly onto the run's wall-clock window; otherwise the
//!   structural-token index itself is the (pseudo-)timestamp, i.e. the
//!   track reads as "buffer size by document position";
//! * a **VM lane** of aggregate per-task-kind spans laid end to end —
//!   a time-attribution profile (where evaluation time went), not a
//!   chronological record;
//! * a **summary instant** carrying the run's headline numbers (tokens,
//!   peak buffer bytes, purge-trigger counts, tokenizer window peak).

use gcx_core::RunReport;
use gcx_obs::chrome::{ArgValue, TraceBuilder};

/// Serialize the named runs into one Chrome trace JSON document. Runs
/// without telemetry (engine ran with `telemetry: false`) are an error:
/// the caller controls the options and a silent empty lane would read
/// as "nothing happened".
pub(crate) fn build(runs: &[(String, &RunReport)]) -> Result<String, String> {
    let mut t = TraceBuilder::new();
    for (i, (name, report)) in runs.iter().enumerate() {
        let obs = report
            .obs
            .as_ref()
            .ok_or_else(|| format!("{name}: run report carries no telemetry"))?;
        // Two thread tracks per run; counter tracks are keyed by name.
        let feed_tid = 1 + 2 * i as u64;
        let vm_tid = feed_tid + 1;

        // Feed lane: real clock, normalized so the first chunk is t=0.
        let base_us = obs.feed_spans.first().map_or(0, |s| s.start_us);
        let span_total_us = obs
            .feed_spans
            .last()
            .map_or(0, |s| s.start_us + s.dur_us - base_us);
        if !obs.feed_spans.is_empty() {
            t.thread_name(feed_tid, &format!("{name}: feed"));
            for span in &obs.feed_spans {
                t.complete(
                    "feed",
                    "io",
                    span.start_us - base_us,
                    span.dur_us.max(1),
                    feed_tid,
                    &[("bytes", ArgValue::U64(span.bytes))],
                );
            }
        }

        // Buffer occupancy: wall-clock when a feed clock exists, else
        // document position (token index) as the timestamp.
        let counter = format!("{name}: live_bytes");
        let tokens = report.tokens.max(1);
        for &(token, bytes) in &obs.live_bytes_timeline {
            let ts = if span_total_us > 0 {
                token.min(tokens) * span_total_us / tokens
            } else {
                token
            };
            t.counter(&counter, ts, &[("bytes", bytes)]);
        }

        // VM task attribution: aggregate spans laid end to end.
        t.thread_name(vm_tid, &format!("{name}: vm tasks (aggregate)"));
        let mut cursor = 0u64;
        for task in &obs.tasks {
            let dur = (task.nanos / 1_000).max(1);
            t.complete(
                task.name,
                "vm",
                cursor,
                dur,
                vm_tid,
                &[
                    ("count", ArgValue::U64(task.count)),
                    ("nanos", ArgValue::U64(task.nanos)),
                ],
            );
            cursor += dur;
        }

        t.instant(
            &format!("{name}: summary"),
            "run",
            0,
            vm_tid,
            &[
                ("tokens", ArgValue::U64(report.tokens)),
                ("output_bytes", ArgValue::U64(report.output_bytes)),
                (
                    "peak_buffer_bytes",
                    ArgValue::U64(report.buffer.peak_live_bytes),
                ),
                ("purged_nodes", ArgValue::U64(report.buffer.purged)),
                ("purges_on_signoff", ArgValue::U64(obs.purges_on_signoff)),
                ("purges_on_close", ArgValue::U64(obs.purges_on_close)),
                ("purges_on_unpin", ArgValue::U64(obs.purges_on_unpin)),
                (
                    "tokenizer_window_peak",
                    ArgValue::U64(obs.tokenizer_window_peak),
                ),
            ],
        );
    }
    Ok(t.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcx_core::{CompiledQuery, EngineOptions};

    #[test]
    fn traced_run_produces_loadable_events() {
        let q = CompiledQuery::compile("for $b in /bib/book return $b/title").unwrap();
        let opts = EngineOptions::gcx().with_telemetry();
        let mut session = q.session(&opts);
        session
            .feed(b"<bib><book><title>Streams</title></book></bib>")
            .unwrap();
        let report = session.finish().unwrap();
        let json = build(&[("q".to_string(), &report)]).unwrap();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"name\":\"feed\""), "{json}");
        assert!(json.contains("q: vm tasks (aggregate)"), "{json}");
        assert!(json.contains("\"peak_buffer_bytes\""), "{json}");
    }

    #[test]
    fn untraced_report_is_an_error() {
        let q = CompiledQuery::compile("'x'").unwrap();
        let mut out = Vec::new();
        let report = gcx_core::run(&q, &EngineOptions::gcx(), &b"<bib/>"[..], &mut out).unwrap();
        let err = build(&[("q".to_string(), &report)]).unwrap_err();
        assert!(err.contains("no telemetry"), "{err}");
    }
}
