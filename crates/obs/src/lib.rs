#![deny(unsafe_code)]
//! # gcx-obs — observability primitives for the GCX system
//!
//! Std-only building blocks shared by every layer that wants to be
//! observable, designed around one constraint: **zero cost when off**.
//! Nothing in this crate allocates on the hot path — histograms are
//! fixed-bucket arrays allocated once, the span ring has a fixed
//! capacity, and every "is observability on?" check in the engine is a
//! null-pointer test on an `Option<Box<_>>`.
//!
//! * [`Hist`] — single-threaded fixed-bucket histogram (per-run engine
//!   telemetry: buffer residency, purge-batch sizes).
//! * [`AtomicHist`] / [`Counter`] — thread-safe variants for the server
//!   (request latency, buffer peaks), rendered as Prometheus text.
//! * [`prom`] — hand-rolled Prometheus text-exposition helpers
//!   (`# HELP`/`# TYPE` lines, label escaping, cumulative `le` buckets).
//! * [`chrome`] — Chrome trace-event JSON writer (Perfetto-loadable
//!   `"X"` duration events and `"C"` counter tracks).
//! * [`SpanRing`] — fixed-capacity ring of completed spans.
//! * [`json_escape`]/[`push_json_escaped`] — the one JSON string escaper
//!   the hand-rolled JSON in this workspace should share.
//! * [`trace_id`] — cheap unique request ids (no external RNG).

pub mod chrome;
pub mod prom;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Process-wide monotonic clock origin: every timestamp this crate hands
/// out is microseconds since the first call, so spans from different
/// threads land on one Perfetto timeline.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process observability epoch (monotonic).
pub fn now_micros() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Bucket upper bounds for byte-sized measurements (64B .. 256MB).
pub const BYTE_BUCKETS: &[u64] = &[
    64,
    256,
    1024,
    4 * 1024,
    16 * 1024,
    64 * 1024,
    256 * 1024,
    1024 * 1024,
    4 * 1024 * 1024,
    16 * 1024 * 1024,
    64 * 1024 * 1024,
    256 * 1024 * 1024,
];

/// Bucket upper bounds for token-distance measurements (how many
/// structural tokens a node stayed resident between append and purge).
pub const TOKEN_BUCKETS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 512, 2048, 8192, 65536, 1048576];

/// Bucket upper bounds for small cardinalities (purge-batch sizes).
pub const COUNT_BUCKETS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096];

/// Bucket upper bounds for durations in microseconds (1µs .. 60s).
pub const LATENCY_US_BUCKETS: &[u64] = &[
    1, 10, 100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 5_000_000,
    60_000_000,
];

/// Single-threaded fixed-bucket histogram. One `Vec` allocated at
/// construction; [`Hist::observe`] is a branchless-off-the-end bucket
/// scan plus three adds — safe inside the engine's no-alloc token loop.
#[derive(Debug, Clone)]
pub struct Hist {
    bounds: &'static [u64],
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Hist {
    /// A histogram over `bounds` (ascending upper bounds; an implicit
    /// `+Inf` bucket is appended).
    pub fn new(bounds: &'static [u64]) -> Hist {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Hist {
            bounds,
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one value.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Fold another histogram into this one. Requires identical bucket
    /// bounds (all engine histograms use the shared static bound sets,
    /// so shard reports merge without rebinning).
    pub fn merge(&mut self, other: &Hist) {
        assert!(
            std::ptr::eq(self.bounds, other.bounds) || self.bounds == other.bounds,
            "merging histograms with different bounds"
        );
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Bucket upper bounds (without the implicit `+Inf`).
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Per-bucket (non-cumulative) counts; the last entry is `+Inf`.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Hand-rolled JSON: `{"count":..,"sum":..,"max":..,"le":[..],
    /// "counts":[..]}` — `counts` is per-bucket with the trailing
    /// overflow bucket, aligned with `le`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str(&format!(
            "{{\"count\":{},\"sum\":{},\"max\":{},\"le\":[",
            self.count, self.sum, self.max
        ));
        for (i, b) in self.bounds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&b.to_string());
        }
        out.push_str("],\"counts\":[");
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&c.to_string());
        }
        out.push_str("]}");
        out
    }
}

/// A relaxed atomic counter/gauge with saturating decrement — safe to
/// bump from any thread, never wraps below zero.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Saturating decrement: a gauge that would go negative under a
    /// racy interleaving pins at zero instead of wrapping to 2^64-1.
    #[inline]
    pub fn dec_saturating(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Raise to at least `n` (high-watermark gauges).
    #[inline]
    pub fn raise_to(&self, n: u64) {
        self.0.fetch_max(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Thread-safe fixed-bucket histogram (relaxed atomics): request
/// latencies, per-eval buffer peaks. Allocated once at server startup.
#[derive(Debug)]
pub struct AtomicHist {
    bounds: &'static [u64],
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl AtomicHist {
    /// A histogram over `bounds` (ascending; implicit `+Inf` appended).
    pub fn new(bounds: &'static [u64]) -> AtomicHist {
        AtomicHist {
            bounds,
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one value.
    #[inline]
    pub fn observe(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Append this histogram in Prometheus text form: cumulative `le`
    /// buckets plus `_sum` and `_count`. `labels` are extra label pairs
    /// applied to every sample line (on top of `le`).
    pub fn render_prom(&self, out: &mut String, name: &str, labels: &[(&str, &str)]) {
        let mut cumulative = 0u64;
        for (i, bound) in self.bounds.iter().enumerate() {
            cumulative += self.counts[i].load(Ordering::Relaxed);
            prom::sample_with_le(out, name, labels, &bound.to_string(), cumulative);
        }
        cumulative += self.counts[self.bounds.len()].load(Ordering::Relaxed);
        prom::sample_with_le(out, name, labels, "+Inf", cumulative);
        prom::sample(out, &format!("{name}_sum"), labels, self.sum());
        prom::sample(out, &format!("{name}_count"), labels, self.count());
    }
}

/// One completed span: a named interval on the process timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Static span name (e.g. `"feed"`, `"admission-wait"`).
    pub name: &'static str,
    /// Category for trace viewers (e.g. `"engine"`, `"server"`).
    pub cat: &'static str,
    /// Start, microseconds on the [`now_micros`] clock.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// Fixed-capacity ring of completed spans: recording never allocates and
/// never grows — old spans are overwritten once the ring is full, so a
/// long run keeps its most recent history.
#[derive(Debug)]
pub struct SpanRing {
    spans: Vec<Span>,
    head: usize,
    len: usize,
}

impl SpanRing {
    /// A ring holding at most `capacity` spans (allocated up front).
    pub fn new(capacity: usize) -> SpanRing {
        SpanRing {
            spans: Vec::with_capacity(capacity.max(1)),
            head: 0,
            len: 0,
        }
    }

    /// Record a completed span (overwrites the oldest when full).
    pub fn push(&mut self, span: Span) {
        if self.spans.len() < self.spans.capacity() {
            self.spans.push(span);
            self.len = self.spans.len();
        } else {
            self.spans[self.head] = span;
            self.head = (self.head + 1) % self.spans.len();
            self.len = self.spans.len();
        }
    }

    /// Number of spans currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no span has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Spans in recording order (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &Span> {
        let (tail, head) = self.spans.split_at(self.head);
        head.iter().chain(tail.iter())
    }
}

/// Append `s` to `out` with JSON string escaping (quotes, backslashes,
/// and control characters — the minimum RFC 8259 requires). The single
/// escaper behind every piece of hand-rolled JSON that interpolates
/// untrusted text (query names, error messages).
pub fn push_json_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// [`push_json_escaped`] into a fresh `String`.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    push_json_escaped(&mut out, s);
    out
}

/// A 16-hex-digit unique id for request tracing. No external RNG: wall
/// time, a process-wide counter, and the thread id feed one splitmix64
/// round, which is plenty for *distinguishing* requests (these are ids,
/// not secrets).
pub fn trace_id() -> String {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let tid = {
        use std::hash::{Hash, Hasher};
        let mut h = std::hash::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        h.finish()
    };
    let mut z = nanos
        .wrapping_add(seq.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(tid.rotate_left(32));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    format!("{z:016x}")
}

/// True when `id` is usable as a propagated trace id: 1..=64 chars of
/// `[A-Za-z0-9._-]` — header-, log- and JSON-safe without escaping.
pub fn valid_trace_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_buckets_and_stats() {
        let mut h = Hist::new(&[10, 100, 1000]);
        for v in [1, 10, 11, 100, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1 + 10 + 11 + 100 + 5000);
        assert_eq!(h.max(), 5000);
        // ≤10 → bucket 0 (twice), ≤100 → bucket 1 (twice), ≤1000 → none,
        // overflow → one.
        assert_eq!(h.counts(), &[2, 2, 0, 1]);
        let json = h.to_json();
        assert!(json.contains("\"le\":[10,100,1000]"), "{json}");
        assert!(json.contains("\"counts\":[2,2,0,1]"), "{json}");
    }

    #[test]
    fn atomic_hist_renders_cumulative_le() {
        let h = AtomicHist::new(&[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(500);
        let mut out = String::new();
        h.render_prom(&mut out, "x_us", &[("outcome", "2xx")]);
        assert!(
            out.contains("x_us_bucket{outcome=\"2xx\",le=\"10\"} 1\n"),
            "{out}"
        );
        assert!(
            out.contains("x_us_bucket{outcome=\"2xx\",le=\"100\"} 2\n"),
            "{out}"
        );
        assert!(
            out.contains("x_us_bucket{outcome=\"2xx\",le=\"+Inf\"} 3\n"),
            "{out}"
        );
        assert!(out.contains("x_us_sum{outcome=\"2xx\"} 555\n"), "{out}");
        assert!(out.contains("x_us_count{outcome=\"2xx\"} 3\n"), "{out}");
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let c = Counter::default();
        c.dec_saturating();
        assert_eq!(c.get(), 0, "decrement below zero must pin at zero");
        c.inc();
        c.add(4);
        c.dec_saturating();
        assert_eq!(c.get(), 4);
        c.raise_to(10);
        c.raise_to(7);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn span_ring_overwrites_oldest() {
        let mut ring = SpanRing::new(3);
        assert!(ring.is_empty());
        for i in 0..5u64 {
            ring.push(Span {
                name: "s",
                cat: "t",
                start_us: i,
                dur_us: 1,
            });
        }
        assert_eq!(ring.len(), 3);
        let starts: Vec<u64> = ring.iter().map(|s| s.start_us).collect();
        assert_eq!(starts, vec![2, 3, 4], "oldest spans evicted first");
    }

    #[test]
    fn json_escaping_covers_quotes_backslashes_and_controls() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\tc\r"), "a\\nb\\tc\\r");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("naïve"), "naïve", "non-ASCII passes through");
    }

    #[test]
    fn trace_ids_are_unique_and_valid() {
        let a = trace_id();
        let b = trace_id();
        assert_ne!(a, b);
        assert_eq!(a.len(), 16);
        assert!(valid_trace_id(&a));
        assert!(valid_trace_id("client-supplied_id.01"));
        assert!(!valid_trace_id(""));
        assert!(!valid_trace_id("has space"));
        assert!(!valid_trace_id(&"x".repeat(65)));
        assert!(!valid_trace_id("quote\"breaks\"headers"));
    }

    #[test]
    fn clock_is_monotonic() {
        let a = now_micros();
        let b = now_micros();
        assert!(b >= a);
    }
}
