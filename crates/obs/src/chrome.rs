//! Chrome trace-event JSON writer (the `chrome://tracing` / Perfetto
//! format): `"X"` complete-duration events, `"C"` counter tracks, `"i"`
//! instants, and `"M"` metadata for naming threads. Output is the
//! object form — `{"traceEvents":[...]}` — which both viewers load.

use crate::push_json_escaped;

/// Builds one trace file. Events append as pre-serialized JSON objects;
/// [`TraceBuilder::finish`] wraps them in the envelope.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    events: Vec<String>,
}

/// One event argument value.
#[derive(Debug, Clone, Copy)]
pub enum ArgValue<'a> {
    /// Unsigned integer argument.
    U64(u64),
    /// Float argument.
    F64(f64),
    /// String argument (escaped on write).
    Str(&'a str),
}

impl TraceBuilder {
    /// A fresh, empty trace.
    pub fn new() -> TraceBuilder {
        TraceBuilder::default()
    }

    fn push_common(ev: &mut String, name: &str, cat: &str, ph: char, ts_us: u64, tid: u64) {
        ev.push_str("{\"name\":\"");
        push_json_escaped(ev, name);
        ev.push_str("\",\"cat\":\"");
        push_json_escaped(ev, cat);
        ev.push_str(&format!(
            "\",\"ph\":\"{ph}\",\"ts\":{ts_us},\"pid\":1,\"tid\":{tid}"
        ));
    }

    fn push_args(ev: &mut String, args: &[(&str, ArgValue<'_>)]) {
        if args.is_empty() {
            return;
        }
        ev.push_str(",\"args\":{");
        for (i, (k, v)) in args.iter().enumerate() {
            if i > 0 {
                ev.push(',');
            }
            ev.push('"');
            push_json_escaped(ev, k);
            ev.push_str("\":");
            match v {
                ArgValue::U64(n) => ev.push_str(&n.to_string()),
                ArgValue::F64(f) => ev.push_str(&format!("{f}")),
                ArgValue::Str(s) => {
                    ev.push('"');
                    push_json_escaped(ev, s);
                    ev.push('"');
                }
            }
        }
        ev.push('}');
    }

    /// A complete-duration (`"X"`) event on thread track `tid`.
    pub fn complete(
        &mut self,
        name: &str,
        cat: &str,
        ts_us: u64,
        dur_us: u64,
        tid: u64,
        args: &[(&str, ArgValue<'_>)],
    ) {
        let mut ev = String::with_capacity(96);
        Self::push_common(&mut ev, name, cat, 'X', ts_us, tid);
        ev.push_str(&format!(",\"dur\":{dur_us}"));
        Self::push_args(&mut ev, args);
        ev.push('}');
        self.events.push(ev);
    }

    /// A counter (`"C"`) sample: each `(series, value)` pair becomes one
    /// series of the counter track `name`.
    pub fn counter(&mut self, name: &str, ts_us: u64, series: &[(&str, u64)]) {
        let mut ev = String::with_capacity(96);
        Self::push_common(&mut ev, name, "counter", 'C', ts_us, 0);
        ev.push_str(",\"args\":{");
        for (i, (k, v)) in series.iter().enumerate() {
            if i > 0 {
                ev.push(',');
            }
            ev.push('"');
            push_json_escaped(&mut ev, k);
            ev.push_str(&format!("\":{v}"));
        }
        ev.push_str("}}");
        self.events.push(ev);
    }

    /// An instant (`"i"`) event (thread scope).
    pub fn instant(
        &mut self,
        name: &str,
        cat: &str,
        ts_us: u64,
        tid: u64,
        args: &[(&str, ArgValue<'_>)],
    ) {
        let mut ev = String::with_capacity(96);
        Self::push_common(&mut ev, name, cat, 'i', ts_us, tid);
        ev.push_str(",\"s\":\"t\"");
        Self::push_args(&mut ev, args);
        ev.push('}');
        self.events.push(ev);
    }

    /// Name a thread track (`"M"` metadata, `thread_name`).
    pub fn thread_name(&mut self, tid: u64, name: &str) {
        let mut ev = String::with_capacity(96);
        ev.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,");
        ev.push_str(&format!("\"tid\":{tid},\"args\":{{\"name\":\""));
        push_json_escaped(&mut ev, name);
        ev.push_str("\"}}");
        self.events.push(ev);
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serialize the trace file.
    pub fn finish(self) -> String {
        let mut out =
            String::with_capacity(64 + self.events.iter().map(String::len).sum::<usize>());
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(ev);
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize_into_the_envelope() {
        let mut t = TraceBuilder::new();
        t.thread_name(1, "engine");
        t.complete(
            "feed",
            "engine",
            10,
            5,
            1,
            &[("bytes", ArgValue::U64(64)), ("q", ArgValue::Str("a\"b"))],
        );
        t.counter("buffer", 12, &[("live_bytes", 400)]);
        t.instant("finish", "engine", 20, 1, &[]);
        assert_eq!(t.len(), 4);
        let json = t.finish();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(
            json.contains("\"ph\":\"X\",\"ts\":10,\"pid\":1,\"tid\":1,\"dur\":5"),
            "{json}"
        );
        assert!(json.contains("\"q\":\"a\\\"b\""), "escaped arg: {json}");
        assert!(json.contains("\"ph\":\"C\""), "{json}");
        assert!(json.contains("\"live_bytes\":400"), "{json}");
        assert!(json.contains("\"thread_name\""), "{json}");
    }
}
