//! Hand-rolled Prometheus text-exposition helpers (format version
//! 0.0.4): `# HELP`/`# TYPE` preambles, label-value escaping, and sample
//! lines. [`crate::AtomicHist::render_prom`] builds on these for
//! cumulative `le` buckets.

use std::fmt::Write as _;

/// Append the `# HELP` and `# TYPE` preamble for a metric family.
/// `kind` is `counter`, `gauge`, or `histogram`.
pub fn preamble(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Append one sample line: `name{labels} value`.
pub fn sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: u64) {
    out.push_str(name);
    push_labels(out, labels, None);
    let _ = writeln!(out, " {value}");
}

/// Append one sample line with a float value (gauges like utilization).
pub fn sample_f64(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    out.push_str(name);
    push_labels(out, labels, None);
    let _ = writeln!(out, " {value}");
}

/// Append one `_bucket` sample with an `le` label appended after
/// `labels`.
pub fn sample_with_le(out: &mut String, name: &str, labels: &[(&str, &str)], le: &str, value: u64) {
    out.push_str(name);
    out.push_str("_bucket");
    push_labels(out, labels, Some(le));
    let _ = writeln!(out, " {value}");
}

fn push_labels(out: &mut String, labels: &[(&str, &str)], le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        push_escaped_label_value(out, v);
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        out.push_str(le);
        out.push('"');
    }
    out.push('}');
}

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline.
pub fn push_escaped_label_value(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_and_preambles_render() {
        let mut out = String::new();
        preamble(
            &mut out,
            "gcx_requests_total",
            "Requests served.",
            "counter",
        );
        sample(&mut out, "gcx_requests_total", &[("outcome", "2xx")], 7);
        sample(&mut out, "gcx_up", &[], 1);
        sample_f64(&mut out, "gcx_util", &[], 0.25);
        assert_eq!(
            out,
            "# HELP gcx_requests_total Requests served.\n\
             # TYPE gcx_requests_total counter\n\
             gcx_requests_total{outcome=\"2xx\"} 7\n\
             gcx_up 1\n\
             gcx_util 0.25\n"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let mut out = String::new();
        sample(&mut out, "m", &[("q", "we\"ird\\name\n")], 1);
        assert_eq!(out, "m{q=\"we\\\"ird\\\\name\\n\"} 1\n");
    }
}
