#![deny(unsafe_code)]
//! # gcx-dom — in-memory DOM and naive XQuery evaluator
//!
//! The full-buffering baseline of the GCX experiments: load the entire
//! document into a DOM, then evaluate the query recursively. This is the
//! qualitative behaviour of the conventional in-memory engines the paper
//! compares against (Galax, Saxon, QizX): memory linear in the input, no
//! streaming, no projection, no garbage collection.
//!
//! The implementation is deliberately **independent** of `gcx-core` — same
//! AST, same output model, different code — so it doubles as a
//! differential-testing oracle: property tests assert that GCX (all three
//! buffer configurations) and this evaluator produce byte-identical
//! results.
//!
//! ```
//! let out = gcx_dom::run_query(
//!     "<books>{ for $b in /bib/book return $b/title }</books>",
//!     "<bib><book><title>T</title></book></bib>",
//! ).unwrap();
//! assert_eq!(out, "<books><title>T</title></books>");
//! ```

mod eval;
mod tree;

pub use eval::{run, run_query, DomError};
pub use tree::{Dom, DomId, DomNode};
