//! Recursive XQuery evaluation over a fully materialized DOM.
//!
//! Semantics are identical to `gcx-core`'s streaming evaluator (same output
//! model, same comparison rules, same deduplicated document-order path
//! semantics) but the code is written independently, top-down and eagerly —
//! the classic in-memory evaluation strategy.

use crate::tree::{Dom, DomId};
use gcx_query::ast::{
    AggFunc, Axis, CmpOp, Cond, Expr, NodeTest, Operand, PathExpr, PathRoot, Pred, Query, Step,
};
use gcx_query::QueryError;
use gcx_xml::{XmlError, XmlWriter};
use std::collections::HashSet;
use std::io::{Read, Write};

/// Errors from the DOM baseline.
#[derive(Debug)]
pub enum DomError {
    /// XML parse/serialize failure.
    Xml(XmlError),
    /// Query compilation failure.
    Query(QueryError),
    /// Internal invariant violation.
    Internal(String),
}

impl std::fmt::Display for DomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DomError::Xml(e) => write!(f, "XML error: {e}"),
            DomError::Query(e) => write!(f, "query error: {e}"),
            DomError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for DomError {}

impl From<XmlError> for DomError {
    fn from(e: XmlError) -> Self {
        DomError::Xml(e)
    }
}

impl From<QueryError> for DomError {
    fn from(e: QueryError) -> Self {
        DomError::Query(e)
    }
}

/// What the baseline measured.
#[derive(Debug, Clone, Copy)]
pub struct DomReport {
    /// Total DOM nodes materialized (the memory proxy).
    pub nodes: usize,
    /// Serialized output size.
    pub output_bytes: u64,
}

/// Evaluation context: the document root or a node.
#[derive(Debug, Clone, Copy)]
enum Ctx {
    Document,
    Node(DomId),
}

/// Run a normalized query against an input stream (fully materialized
/// first), writing the result to `output`.
pub fn run<R: Read, W: Write>(query: &Query, input: R, output: W) -> Result<DomReport, DomError> {
    let dom = Dom::parse(input)?;
    let mut out = XmlWriter::new(output);
    let mut ev = Evaluator {
        dom: &dom,
        env: vec![None; query.var_names.len()],
    };
    ev.eval(&query.root, &mut out)?;
    out.flush()?;
    Ok(DomReport {
        nodes: dom.len(),
        output_bytes: out.bytes_written(),
    })
}

/// Convenience: compile + run, returning the output string.
pub fn run_query(query_text: &str, input: &str) -> Result<String, DomError> {
    let q = gcx_query::compile(query_text)?;
    let mut out = Vec::new();
    run(&q, input.as_bytes(), &mut out)?;
    String::from_utf8(out).map_err(|_| DomError::Internal("non-UTF8 output".into()))
}

struct Evaluator<'d> {
    dom: &'d Dom,
    env: Vec<Option<DomId>>,
}

impl<'d> Evaluator<'d> {
    fn resolve_root(&self, root: &PathRoot) -> Result<Ctx, DomError> {
        match root {
            PathRoot::Root => Ok(Ctx::Document),
            PathRoot::Var(v) => self.env[v.id.index()]
                .map(Ctx::Node)
                .ok_or_else(|| DomError::Internal(format!("${} unbound", v.name))),
        }
    }

    fn children_of(&self, ctx: Ctx) -> &'d [DomId] {
        match ctx {
            Ctx::Document => &self.dom.roots,
            Ctx::Node(n) => self.dom.children(n),
        }
    }

    fn test_matches(&self, test: &NodeTest, n: DomId) -> bool {
        match test {
            NodeTest::Name(name) => self.dom.name(n) == Some(name.as_str()),
            NodeTest::Star => !self.dom.is_text(n),
            NodeTest::Text => self.dom.is_text(n),
            NodeTest::AnyNode => true,
        }
    }

    /// All nodes matching `steps` from `ctx`, distinct, in document order.
    fn eval_steps(&self, ctx: Ctx, steps: &[Step]) -> Vec<DomId> {
        let mut acc = Vec::new();
        self.step_rec(ctx, steps, &mut acc);
        // Multiple descendant axes can produce duplicate derivations;
        // XQuery sequences are distinct nodes in document order.
        let mut seen = HashSet::new();
        acc.retain(|id| seen.insert(*id));
        acc
    }

    fn step_rec(&self, ctx: Ctx, steps: &[Step], acc: &mut Vec<DomId>) {
        let Some((step, rest)) = steps.split_first() else {
            if let Ctx::Node(n) = ctx {
                acc.push(n);
            }
            return;
        };
        match step.axis {
            Axis::Child => {
                let mut seen = 0u32;
                for &c in self.children_of(ctx) {
                    if self.test_matches(&step.test, c) {
                        seen += 1;
                        match step.pred {
                            Some(Pred::Position(k)) if seen != k => {}
                            _ => self.step_rec(Ctx::Node(c), rest, acc),
                        }
                    }
                }
            }
            Axis::Descendant => {
                for &c in self.children_of(ctx) {
                    self.dos_rec(c, step, rest, acc);
                }
            }
            Axis::DescendantOrSelf => match ctx {
                Ctx::Node(n) => self.dos_rec(n, step, rest, acc),
                Ctx::Document => {
                    for &c in self.children_of(ctx) {
                        self.dos_rec(c, step, rest, acc);
                    }
                }
            },
            Axis::SelfAxis => {
                if let Ctx::Node(n) = ctx {
                    if self.test_matches(&step.test, n) {
                        self.step_rec(ctx, rest, acc);
                    }
                }
            }
            Axis::Attribute => {
                unreachable!("attribute steps are handled by the caller")
            }
        }
    }

    /// Descendant-or-self dispatch. Iterative over the subtree (an explicit
    /// stack, popped in document order): descendant axes see the whole
    /// document depth, which must not become native stack depth. The
    /// `step_rec` recursion it feeds is bounded by the path length.
    fn dos_rec(&self, n: DomId, step: &Step, rest: &[Step], acc: &mut Vec<DomId>) {
        let mut stack = vec![n];
        while let Some(m) = stack.pop() {
            if self.test_matches(&step.test, m) {
                self.step_rec(Ctx::Node(m), rest, acc);
            }
            stack.extend(self.dom.children(m).iter().rev());
        }
    }

    /// Matches of a full path expression; attribute-terminated paths return
    /// the owner elements plus the selector.
    fn eval_path<'p>(&self, p: &'p PathExpr) -> Result<(Vec<DomId>, Option<&'p Step>), DomError> {
        let ctx = self.resolve_root(&p.root)?;
        if p.ends_in_attribute() {
            let (last, rest) = p.steps.split_last().unwrap();
            Ok((self.eval_steps(ctx, rest), Some(last)))
        } else {
            Ok((self.eval_steps(ctx, &p.steps), None))
        }
    }

    /// Attribute values selected by an attribute step on `n`.
    fn attr_values(&self, n: DomId, attr_step: &Step, out: &mut Vec<String>) {
        match &attr_step.test {
            NodeTest::Name(name) => {
                if let Some(v) = self.dom.attr(n, name) {
                    out.push(v.to_string());
                }
            }
            _ => {
                for (_, v) in self.dom.attrs(n) {
                    out.push(v.clone());
                }
            }
        }
    }

    fn eval<W: Write>(&mut self, e: &Expr, out: &mut XmlWriter<W>) -> Result<(), DomError> {
        match e {
            Expr::Empty => Ok(()),
            Expr::Sequence(items) => {
                for item in items {
                    self.eval(item, out)?;
                }
                Ok(())
            }
            Expr::StringLit(s) => {
                out.text(s)?;
                Ok(())
            }
            Expr::NumberLit(v) => {
                out.text(&fmt_number(*v))?;
                Ok(())
            }
            Expr::Element {
                name,
                attrs,
                content,
            } => {
                out.start_element(name)?;
                for (k, v) in attrs {
                    out.attribute(k, v)?;
                }
                self.eval(content, out)?;
                out.end_element()?;
                Ok(())
            }
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if self.eval_cond(cond)? {
                    self.eval(then_branch, out)
                } else {
                    self.eval(else_branch, out)
                }
            }
            Expr::For {
                var, source, body, ..
            } => {
                let (matches, attr) = self.eval_path(source)?;
                debug_assert!(attr.is_none(), "normalize rejects attribute loops");
                for m in matches {
                    self.env[var.id.index()] = Some(m);
                    self.eval(body, out)?;
                    self.env[var.id.index()] = None;
                }
                Ok(())
            }
            Expr::Path(p) => {
                let (matches, attr) = self.eval_path(p)?;
                for m in matches {
                    match attr {
                        Some(step) => {
                            let mut vals = Vec::new();
                            self.attr_values(m, step, &mut vals);
                            for v in vals {
                                out.text(&v)?;
                            }
                        }
                        None => self.dom.serialize(m, out)?,
                    }
                }
                Ok(())
            }
            Expr::Aggregate { func, arg } => {
                let values = self.collect_values(&Operand::Path(arg.clone()))?;
                let text = match func {
                    AggFunc::Count => Some(fmt_number(values.len() as f64)),
                    AggFunc::Sum => {
                        Some(fmt_number(values.iter().filter_map(|v| v.num).sum::<f64>()))
                    }
                    AggFunc::Min => values
                        .iter()
                        .filter_map(|v| v.num)
                        .fold(None, |acc: Option<f64>, v| {
                            Some(acc.map_or(v, |a| a.min(v)))
                        })
                        .map(fmt_number),
                    AggFunc::Max => values
                        .iter()
                        .filter_map(|v| v.num)
                        .fold(None, |acc: Option<f64>, v| {
                            Some(acc.map_or(v, |a| a.max(v)))
                        })
                        .map(fmt_number),
                    AggFunc::Avg => {
                        let nums: Vec<f64> = values.iter().filter_map(|v| v.num).collect();
                        if nums.is_empty() {
                            None
                        } else {
                            Some(fmt_number(nums.iter().sum::<f64>() / nums.len() as f64))
                        }
                    }
                };
                if let Some(t) = text {
                    out.text(&t)?;
                }
                Ok(())
            }
            // signOff is a no-op outside the streaming engine: the DOM
            // baseline evaluates the *un-rewritten* query, but tolerate it.
            Expr::SignOff { .. } => Ok(()),
        }
    }

    fn eval_cond(&mut self, c: &Cond) -> Result<bool, DomError> {
        match c {
            Cond::True => Ok(true),
            Cond::False => Ok(false),
            Cond::Not(inner) => Ok(!self.eval_cond(inner)?),
            Cond::And(a, b) => Ok(self.eval_cond(a)? && self.eval_cond(b)?),
            Cond::Or(a, b) => Ok(self.eval_cond(a)? || self.eval_cond(b)?),
            Cond::Exists(p) => {
                let (matches, attr) = self.eval_path(p)?;
                match attr {
                    None => Ok(!matches.is_empty()),
                    Some(step) => {
                        let mut vals = Vec::new();
                        for m in matches {
                            self.attr_values(m, step, &mut vals);
                            if !vals.is_empty() {
                                return Ok(true);
                            }
                        }
                        Ok(false)
                    }
                }
            }
            Cond::Compare { op, lhs, rhs } => {
                let l = self.collect_values(lhs)?;
                let r = self.collect_values(rhs)?;
                Ok(compare_existential(*op, &l, &r))
            }
            Cond::StringFn {
                func,
                haystack,
                needle,
            } => {
                let h = self.collect_values(haystack)?;
                let n = self.collect_values(needle)?;
                Ok(h.iter()
                    .any(|hv| n.iter().any(|nv| func.apply(&hv.text, &nv.text))))
            }
        }
    }

    fn collect_values(&mut self, op: &Operand) -> Result<Vec<Value>, DomError> {
        match op {
            Operand::StringLit(s) => Ok(vec![Value::new(s.clone())]),
            Operand::NumberLit(v) => Ok(vec![Value {
                text: fmt_number(*v),
                num: Some(*v),
            }]),
            Operand::Path(p) => {
                let (matches, attr) = self.eval_path(p)?;
                let mut values = Vec::new();
                for m in matches {
                    match attr {
                        Some(step) => {
                            let mut vals = Vec::new();
                            self.attr_values(m, step, &mut vals);
                            values.extend(vals.into_iter().map(Value::new));
                        }
                        None => {
                            let mut s = String::new();
                            self.dom.string_value(m, &mut s);
                            values.push(Value::new(s));
                        }
                    }
                }
                Ok(values)
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Value {
    text: String,
    num: Option<f64>,
}

impl Value {
    fn new(text: String) -> Value {
        let num = text.trim().parse::<f64>().ok();
        Value { text, num }
    }
}

fn compare_existential(op: CmpOp, lhs: &[Value], rhs: &[Value]) -> bool {
    lhs.iter().any(|l| {
        rhs.iter().any(|r| {
            let ord = match (l.num, r.num) {
                (Some(a), Some(b)) => a.partial_cmp(&b),
                _ => Some(l.text.cmp(&r.text)),
            };
            let Some(ord) = ord else { return false };
            use std::cmp::Ordering::*;
            match op {
                CmpOp::Eq => ord == Equal,
                CmpOp::Ne => ord != Equal,
                CmpOp::Lt => ord == Less,
                CmpOp::Le => ord != Greater,
                CmpOp::Gt => ord == Greater,
                CmpOp::Ge => ord != Less,
            }
        })
    })
}

fn fmt_number(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example() {
        let out = run_query(
            r#"<r> {
              for $bib in /bib return
                (for $x in $bib/* return
                   if (not(exists($x/price))) then $x else (),
                 for $b in $bib/book return $b/title)
            } </r>"#,
            "<bib><book><title/><author/></book></bib>",
        )
        .unwrap();
        assert_eq!(out, "<r><book><title/><author/></book><title/></r>");
    }

    #[test]
    fn joins_and_comparisons() {
        let out = run_query(
            "for $p in /db/p return for $q in /db/q return \
             if ($q/ref = $p/id) then <m>{ $q/ref/text() }</m> else ()",
            "<db><p><id>1</id></p><p><id>2</id></p><q><ref>2</ref></q></db>",
        )
        .unwrap();
        assert_eq!(out, "<m>2</m>");
    }

    #[test]
    fn attributes() {
        let out = run_query(
            "for $p in /s/p return if ($p/@id = 'x') then $p/@id else ()",
            "<s><p id=\"x\"/><p id=\"y\"/></s>",
        )
        .unwrap();
        assert_eq!(out, "x");
    }

    #[test]
    fn double_descendant_distinct() {
        let out = run_query(
            "for $b in //a//b return $b/text()",
            "<r><a><a><b>once</b></a></a></r>",
        )
        .unwrap();
        assert_eq!(out, "once");
    }

    #[test]
    fn aggregates() {
        let out = run_query(
            "count(//v), ' ', sum(//v)",
            "<l><v>2</v><x><v>3</v></x></l>",
        )
        .unwrap();
        assert_eq!(out, "2 5");
    }

    #[test]
    fn report_counts_nodes() {
        let q = gcx_query::compile("'x'").unwrap();
        let report = run(&q, "<a><b/><c>t</c></a>".as_bytes(), &mut Vec::new()).unwrap();
        assert_eq!(report.nodes, 4);
    }
}
