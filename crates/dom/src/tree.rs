//! A straightforward DOM: the whole document as an owned tree.

use gcx_xml::{Token, Tokenizer, XmlResult, XmlWriter};
use std::io::Read;

/// Index of a node in the DOM arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomId(pub u32);

/// A DOM node.
#[derive(Debug, Clone)]
pub enum DomNode {
    /// An element with its tag, attributes and children (in order).
    Element {
        /// Tag name.
        name: String,
        /// Attributes in document order.
        attrs: Vec<(String, String)>,
        /// Children ids in document order.
        children: Vec<DomId>,
    },
    /// A text node.
    Text(String),
}

/// The document: arena of nodes plus the top-level children.
#[derive(Debug, Clone, Default)]
pub struct Dom {
    nodes: Vec<DomNode>,
    /// Document-level children (normally a single document element).
    pub roots: Vec<DomId>,
}

impl Dom {
    /// Parse a full document from a reader.
    pub fn parse<R: Read>(input: R) -> XmlResult<Dom> {
        let mut t = Tokenizer::new(input);
        let mut dom = Dom::default();
        // Stack of open element ids.
        let mut open: Vec<DomId> = Vec::new();
        while let Some(tok) = t.next_token()? {
            match tok {
                Token::StartTag(s) => {
                    let id = DomId(dom.nodes.len() as u32);
                    dom.nodes.push(DomNode::Element {
                        name: s.name.to_string(),
                        attrs: s
                            .attrs
                            .iter()
                            .map(|a| (a.name.to_string(), a.value.to_string()))
                            .collect(),
                        children: Vec::new(),
                    });
                    let self_closing = s.self_closing;
                    match open.last() {
                        Some(&p) => dom.push_child(p, id),
                        None => dom.roots.push(id),
                    }
                    if !self_closing {
                        open.push(id);
                    }
                }
                Token::EndTag { .. } => {
                    open.pop();
                }
                Token::Text(content) => {
                    // Text between top-level constructs (whitespace only,
                    // per well-formedness) is ignored, like the streaming
                    // engine does.
                    if let Some(&p) = open.last() {
                        let id = DomId(dom.nodes.len() as u32);
                        dom.nodes.push(DomNode::Text(content.to_string()));
                        dom.push_child(p, id);
                    }
                }
                Token::Comment(_) | Token::ProcessingInstruction { .. } | Token::Doctype(_) => {}
            }
        }
        Ok(dom)
    }

    fn push_child(&mut self, parent: DomId, child: DomId) {
        match &mut self.nodes[parent.0 as usize] {
            DomNode::Element { children, .. } => children.push(child),
            DomNode::Text(_) => unreachable!("text nodes have no children"),
        }
    }

    /// Node accessor.
    pub fn node(&self, id: DomId) -> &DomNode {
        &self.nodes[id.0 as usize]
    }

    /// Total nodes (elements + text) — the memory proxy of this baseline.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for an empty document (nothing parsed).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Children of a node (empty for text).
    pub fn children(&self, id: DomId) -> &[DomId] {
        match self.node(id) {
            DomNode::Element { children, .. } => children,
            DomNode::Text(_) => &[],
        }
    }

    /// Element name, if an element.
    pub fn name(&self, id: DomId) -> Option<&str> {
        match self.node(id) {
            DomNode::Element { name, .. } => Some(name),
            DomNode::Text(_) => None,
        }
    }

    /// True for text nodes.
    pub fn is_text(&self, id: DomId) -> bool {
        matches!(self.node(id), DomNode::Text(_))
    }

    /// Attribute lookup.
    pub fn attr(&self, id: DomId, name: &str) -> Option<&str> {
        match self.node(id) {
            DomNode::Element { attrs, .. } => attrs
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.as_str()),
            DomNode::Text(_) => None,
        }
    }

    /// All attributes (empty for text nodes).
    pub fn attrs(&self, id: DomId) -> &[(String, String)] {
        match self.node(id) {
            DomNode::Element { attrs, .. } => attrs,
            DomNode::Text(_) => &[],
        }
    }

    /// XPath string value: concatenated subtree text. Iterative — document
    /// depth must not become native stack depth.
    pub fn string_value(&self, id: DomId, out: &mut String) {
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            match self.node(n) {
                DomNode::Text(t) => out.push_str(t),
                // Reverse push so the pop order is document order.
                DomNode::Element { children, .. } => stack.extend(children.iter().rev()),
            }
        }
    }

    /// Serialize a subtree. Iterative, like [`Dom::string_value`]: deeply
    /// nested documents serialize in constant native stack space.
    pub fn serialize<W: std::io::Write>(&self, id: DomId, w: &mut XmlWriter<W>) -> XmlResult<()> {
        enum Act {
            Open(DomId),
            Close,
        }
        let mut stack = vec![Act::Open(id)];
        while let Some(act) = stack.pop() {
            match act {
                Act::Close => w.end_element()?,
                Act::Open(n) => match self.node(n) {
                    DomNode::Text(t) => w.text(t)?,
                    DomNode::Element {
                        name,
                        attrs,
                        children,
                    } => {
                        w.start_element(name)?;
                        for (k, v) in attrs {
                            w.attribute(k, v)?;
                        }
                        stack.push(Act::Close);
                        stack.extend(children.iter().rev().map(|&c| Act::Open(c)));
                    }
                },
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_document() {
        let dom = Dom::parse("<a><b x=\"1\">hi</b><c/></a>".as_bytes()).unwrap();
        assert_eq!(dom.roots.len(), 1);
        let a = dom.roots[0];
        assert_eq!(dom.name(a), Some("a"));
        assert_eq!(dom.children(a).len(), 2);
        let b = dom.children(a)[0];
        assert_eq!(dom.attr(b, "x"), Some("1"));
        assert_eq!(dom.len(), 4);
    }

    #[test]
    fn string_value_concatenates() {
        let dom = Dom::parse("<a>x<b>y</b>z</a>".as_bytes()).unwrap();
        let mut s = String::new();
        dom.string_value(dom.roots[0], &mut s);
        assert_eq!(s, "xyz");
    }

    #[test]
    fn serialize_round_trips() {
        let doc = "<a k=\"v&amp;w\"><b>1 &lt; 2</b><c/></a>";
        let dom = Dom::parse(doc.as_bytes()).unwrap();
        let mut w = XmlWriter::new(Vec::new());
        dom.serialize(dom.roots[0], &mut w).unwrap();
        assert_eq!(String::from_utf8(w.finish().unwrap()).unwrap(), doc);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(Dom::parse("<a><b></a>".as_bytes()).is_err());
    }
}
