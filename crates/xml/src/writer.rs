//! Streaming XML serializer.
//!
//! [`XmlWriter`] is the output side of the GCX engine: query results are
//! emitted as soon as the evaluator produces them, so output is streamed just
//! like input. The writer tracks open elements, escapes automatically, and
//! can optionally pretty-print (used by the examples; benchmarks write
//! compact output).
//!
//! Like the tokenizer, the writer's steady-state path is allocation-free:
//! open element names live back-to-back in one reusable string arena, and
//! escaping writes directly to the sink (runs of clean bytes interleaved
//! with entity strings) instead of materializing escaped copies.

use crate::error::{XmlError, XmlErrorKind, XmlResult};
use crate::escape::{escape_entity, first_escape_byte};
use std::io::Write;

/// Serializer configuration.
#[derive(Debug, Clone, Default)]
pub struct WriterOptions {
    /// Pretty-print with the given indent string (e.g. `"  "`). `None`
    /// writes compact output with no inserted whitespace.
    pub indent: Option<String>,
}

/// Content seen inside one open element, for layout decisions.
#[derive(Debug, Clone, Copy, Default)]
struct Content {
    wrote_element: bool,
    wrote_text: bool,
}

/// A streaming XML writer over any [`Write`] sink.
pub struct XmlWriter<W> {
    sink: W,
    opts: WriterOptions,
    /// Open elements: start offset of the name in `name_arena` plus the
    /// content state, for auto-closing, misuse detection and layout.
    stack: Vec<(u32, Content)>,
    /// Open element names, stored back-to-back (no per-element allocation).
    name_arena: String,
    /// True when the current element's start tag is still open (`<a` written,
    /// `>` pending) so attributes can still be added.
    tag_open: bool,
    /// Bytes written so far (cheap output-size metric for benchmarks).
    bytes_written: u64,
}

/// Write `s` to the sink, maintaining the byte counter. A free function so
/// callers can hold borrows of other `XmlWriter` fields (e.g. the name
/// arena) across the call.
fn put<W: Write>(sink: &mut W, counter: &mut u64, s: &str) -> XmlResult<()> {
    sink.write_all(s.as_bytes())?;
    *counter += s.len() as u64;
    Ok(())
}

/// Write `s` with escaping, directly to the sink: clean runs verbatim,
/// escapable bytes as entities. No intermediate allocation.
fn put_escaped<W: Write>(sink: &mut W, counter: &mut u64, s: &str, attr: bool) -> XmlResult<()> {
    let mut from = 0;
    while let Some(i) = first_escape_byte(s, from, attr) {
        put(sink, counter, &s[from..i])?;
        put(sink, counter, escape_entity(s.as_bytes()[i]))?;
        from = i + 1;
    }
    put(sink, counter, &s[from..])
}

impl<W: Write> XmlWriter<W> {
    /// Compact writer.
    pub fn new(sink: W) -> Self {
        XmlWriter::with_options(sink, WriterOptions::default())
    }

    /// Writer with explicit options.
    pub fn with_options(sink: W, opts: WriterOptions) -> Self {
        XmlWriter {
            sink,
            opts,
            stack: Vec::new(),
            name_arena: String::new(),
            tag_open: false,
            bytes_written: 0,
        }
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// The underlying sink.
    pub fn get_ref(&self) -> &W {
        &self.sink
    }

    /// Mutable access to the underlying sink. The sans-IO `EvalSession`
    /// (gcx-core) writes into an in-memory sink and drains it through this
    /// between `feed` calls; misusing it to inject bytes would desync the
    /// writer's byte counter, nothing worse.
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.sink
    }

    /// Current element nesting depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// The open element names, outermost first (error reporting).
    fn open_names(&self) -> Vec<&str> {
        self.stack
            .iter()
            .enumerate()
            .map(|(i, &(start, _))| {
                let end = self
                    .stack
                    .get(i + 1)
                    .map(|&(e, _)| e as usize)
                    .unwrap_or(self.name_arena.len());
                &self.name_arena[start as usize..end]
            })
            .collect()
    }

    /// Consume the writer, returning the sink. Fails if elements are open.
    pub fn finish(mut self) -> XmlResult<W> {
        if !self.stack.is_empty() {
            return Err(XmlError::new(
                XmlErrorKind::WriterMisuse(format!(
                    "finish() with {} open element(s): {}",
                    self.stack.len(),
                    self.open_names().join(", ")
                )),
                crate::TextPos::START,
            ));
        }
        self.flush()?;
        Ok(self.sink)
    }

    /// Flush the underlying sink.
    pub fn flush(&mut self) -> XmlResult<()> {
        self.sink.flush()?;
        Ok(())
    }

    fn raw(&mut self, s: &str) -> XmlResult<()> {
        put(&mut self.sink, &mut self.bytes_written, s)
    }

    /// Close a pending start tag (write `>`), if any.
    fn seal_tag(&mut self) -> XmlResult<()> {
        if self.tag_open {
            self.raw(">")?;
            self.tag_open = false;
        }
        Ok(())
    }

    fn newline_indent(&mut self, depth: usize) -> XmlResult<()> {
        if let Some(ind) = self.opts.indent.as_deref() {
            put(&mut self.sink, &mut self.bytes_written, "\n")?;
            for _ in 0..depth {
                put(&mut self.sink, &mut self.bytes_written, ind)?;
            }
        }
        Ok(())
    }

    /// Write `<name`, leaving the tag open for attributes.
    pub fn start_element(&mut self, name: &str) -> XmlResult<()> {
        self.seal_tag()?;
        if let Some((_, c)) = self.stack.last_mut() {
            c.wrote_element = true;
        }
        if self.opts.indent.is_some() && !self.stack.is_empty() {
            self.newline_indent(self.stack.len())?;
        }
        self.raw("<")?;
        self.raw(name)?;
        self.stack
            .push((self.name_arena.len() as u32, Content::default()));
        self.name_arena.push_str(name);
        self.tag_open = true;
        Ok(())
    }

    /// Add an attribute to the currently open start tag.
    pub fn attribute(&mut self, name: &str, value: &str) -> XmlResult<()> {
        if !self.tag_open {
            return Err(XmlError::new(
                XmlErrorKind::WriterMisuse(format!("attribute `{name}` outside a start tag")),
                crate::TextPos::START,
            ));
        }
        self.raw(" ")?;
        self.raw(name)?;
        self.raw("=\"")?;
        put_escaped(&mut self.sink, &mut self.bytes_written, value, true)?;
        self.raw("\"")
    }

    /// Close the most recently opened element. Collapses `<a></a>` to `<a/>`
    /// when nothing was written inside it.
    pub fn end_element(&mut self) -> XmlResult<()> {
        let (name_start, content) = self.stack.pop().ok_or_else(|| {
            XmlError::new(
                XmlErrorKind::WriterMisuse("end_element() with no open element".into()),
                crate::TextPos::START,
            )
        })?;
        if self.tag_open {
            self.raw("/>")?;
            self.tag_open = false;
        } else {
            // Indent the close tag only for element-only content; mixed or
            // text content must not gain whitespace.
            if content.wrote_element && !content.wrote_text && self.opts.indent.is_some() {
                self.newline_indent(self.stack.len())?;
            }
            put(&mut self.sink, &mut self.bytes_written, "</")?;
            let name = &self.name_arena[name_start as usize..];
            put(&mut self.sink, &mut self.bytes_written, name)?;
            put(&mut self.sink, &mut self.bytes_written, ">")?;
        }
        self.name_arena.truncate(name_start as usize);
        Ok(())
    }

    /// Write escaped character data.
    pub fn text(&mut self, content: &str) -> XmlResult<()> {
        if content.is_empty() {
            return Ok(());
        }
        self.seal_tag()?;
        if let Some((_, c)) = self.stack.last_mut() {
            c.wrote_text = true;
        }
        put_escaped(&mut self.sink, &mut self.bytes_written, content, false)
    }

    /// Write a comment.
    pub fn comment(&mut self, content: &str) -> XmlResult<()> {
        self.seal_tag()?;
        if let Some((_, c)) = self.stack.last_mut() {
            c.wrote_text = true;
        }
        self.raw("<!--")?;
        self.raw(content)?;
        self.raw("-->")
    }

    /// Write pre-escaped markup verbatim. Used by the engine when copying
    /// buffered subtrees whose serialization is already known to be valid.
    pub fn raw_markup(&mut self, markup: &str) -> XmlResult<()> {
        self.seal_tag()?;
        if let Some((_, c)) = self.stack.last_mut() {
            c.wrote_text = true;
        }
        self.raw(markup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(f: impl FnOnce(&mut XmlWriter<Vec<u8>>)) -> String {
        let mut w = XmlWriter::new(Vec::new());
        f(&mut w);
        String::from_utf8(w.finish().unwrap()).unwrap()
    }

    #[test]
    fn nested_elements_and_text() {
        let out = build(|w| {
            w.start_element("bib").unwrap();
            w.start_element("book").unwrap();
            w.text("T & A").unwrap();
            w.end_element().unwrap();
            w.end_element().unwrap();
        });
        assert_eq!(out, "<bib><book>T &amp; A</book></bib>");
    }

    #[test]
    fn empty_element_collapses() {
        let out = build(|w| {
            w.start_element("a").unwrap();
            w.end_element().unwrap();
        });
        assert_eq!(out, "<a/>");
    }

    #[test]
    fn attributes_escaped() {
        let out = build(|w| {
            w.start_element("a").unwrap();
            w.attribute("x", "1\"2<3").unwrap();
            w.end_element().unwrap();
        });
        assert_eq!(out, "<a x=\"1&quot;2&lt;3\"/>");
    }

    #[test]
    fn carriage_returns_escaped() {
        let out = build(|w| {
            w.start_element("a").unwrap();
            w.attribute("x", "v\r1").unwrap();
            w.text("t\r2").unwrap();
            w.end_element().unwrap();
        });
        assert_eq!(out, "<a x=\"v&#13;1\">t&#13;2</a>");
    }

    #[test]
    fn attribute_outside_tag_is_misuse() {
        let mut w = XmlWriter::new(Vec::new());
        w.start_element("a").unwrap();
        w.text("x").unwrap();
        let err = w.attribute("k", "v").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::WriterMisuse(_)));
    }

    #[test]
    fn end_without_start_is_misuse() {
        let mut w = XmlWriter::new(Vec::new());
        assert!(w.end_element().is_err());
    }

    #[test]
    fn finish_with_open_elements_is_misuse() {
        let mut w = XmlWriter::new(Vec::new());
        w.start_element("outer").unwrap();
        w.start_element("inner").unwrap();
        let err = w.finish().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("outer, inner"), "{msg}");
    }

    #[test]
    fn pretty_printing_indents() {
        let mut w = XmlWriter::with_options(
            Vec::new(),
            WriterOptions {
                indent: Some("  ".into()),
            },
        );
        w.start_element("a").unwrap();
        w.start_element("b").unwrap();
        w.text("x").unwrap();
        w.end_element().unwrap();
        w.start_element("c").unwrap();
        w.end_element().unwrap();
        w.end_element().unwrap();
        let out = String::from_utf8(w.finish().unwrap()).unwrap();
        assert_eq!(out, "<a>\n  <b>x</b>\n  <c/>\n</a>");
    }

    #[test]
    fn bytes_written_counts() {
        let mut w = XmlWriter::new(Vec::new());
        w.start_element("ab").unwrap();
        w.end_element().unwrap();
        assert_eq!(w.bytes_written(), 5); // `<ab/>`
    }

    #[test]
    fn deep_nesting_reuses_arena() {
        // Shrunk under Miri: the depth only needs to exceed the arena's
        // initial capacity for the reuse path to be exercised.
        const DEPTH: usize = if cfg!(miri) { 2_000 } else { 200_000 };
        let mut w = XmlWriter::new(Vec::new());
        for _ in 0..DEPTH {
            w.start_element("d").unwrap();
        }
        for _ in 0..DEPTH {
            w.end_element().unwrap();
        }
        let out = w.finish().unwrap();
        assert!(out.starts_with(b"<d><d>"));
    }

    #[test]
    fn output_reparses() {
        let out = build(|w| {
            w.start_element("r").unwrap();
            w.attribute("k", "a&b").unwrap();
            w.text("1 < 2").unwrap();
            w.comment("note").unwrap();
            w.end_element().unwrap();
        });
        let mut t = crate::Tokenizer::from_str(&out);
        let mut texts = Vec::new();
        while let Some(tok) = t.next_token().unwrap() {
            if let crate::Token::Text(s) = tok {
                texts.push(s.to_string());
            }
        }
        assert_eq!(texts, ["1 < 2"]);
    }
}
