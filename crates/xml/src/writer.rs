//! Streaming XML serializer.
//!
//! [`XmlWriter`] is the output side of the GCX engine: query results are
//! emitted as soon as the evaluator produces them, so output is streamed just
//! like input. The writer tracks open elements, escapes automatically, and
//! can optionally pretty-print (used by the examples; benchmarks write
//! compact output).

use crate::error::{XmlError, XmlErrorKind, XmlResult};
use crate::escape::{escape_attr, escape_text};
use std::io::Write;

/// Serializer configuration.
#[derive(Debug, Clone, Default)]
pub struct WriterOptions {
    /// Pretty-print with the given indent string (e.g. `"  "`). `None`
    /// writes compact output with no inserted whitespace.
    pub indent: Option<String>,
}

/// Content seen inside one open element, for layout decisions.
#[derive(Debug, Clone, Copy, Default)]
struct Content {
    wrote_element: bool,
    wrote_text: bool,
}

/// A streaming XML writer over any [`Write`] sink.
pub struct XmlWriter<W> {
    sink: W,
    opts: WriterOptions,
    /// Open element names and their content state, for auto-closing,
    /// misuse detection, and pretty-print layout.
    stack: Vec<(String, Content)>,
    /// True when the current element's start tag is still open (`<a` written,
    /// `>` pending) so attributes can still be added.
    tag_open: bool,
    /// Bytes written so far (cheap output-size metric for benchmarks).
    bytes_written: u64,
}

impl<W: Write> XmlWriter<W> {
    /// Compact writer.
    pub fn new(sink: W) -> Self {
        XmlWriter::with_options(sink, WriterOptions::default())
    }

    /// Writer with explicit options.
    pub fn with_options(sink: W, opts: WriterOptions) -> Self {
        XmlWriter {
            sink,
            opts,
            stack: Vec::new(),
            tag_open: false,
            bytes_written: 0,
        }
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Current element nesting depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Consume the writer, returning the sink. Fails if elements are open.
    pub fn finish(mut self) -> XmlResult<W> {
        if !self.stack.is_empty() {
            return Err(XmlError::new(
                XmlErrorKind::WriterMisuse(format!(
                    "finish() with {} open element(s): {}",
                    self.stack.len(),
                    self.stack
                        .iter()
                        .map(|(n, _)| n.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                )),
                crate::TextPos::START,
            ));
        }
        self.flush()?;
        Ok(self.sink)
    }

    /// Flush the underlying sink.
    pub fn flush(&mut self) -> XmlResult<()> {
        self.sink.flush()?;
        Ok(())
    }

    fn raw(&mut self, s: &str) -> XmlResult<()> {
        self.sink.write_all(s.as_bytes())?;
        self.bytes_written += s.len() as u64;
        Ok(())
    }

    /// Close a pending start tag (write `>`), if any.
    fn seal_tag(&mut self) -> XmlResult<()> {
        if self.tag_open {
            self.raw(">")?;
            self.tag_open = false;
        }
        Ok(())
    }

    fn newline_indent(&mut self, depth: usize) -> XmlResult<()> {
        if let Some(ind) = self.opts.indent.clone() {
            self.raw("\n")?;
            for _ in 0..depth {
                self.raw(&ind)?;
            }
        }
        Ok(())
    }

    /// Write `<name`, leaving the tag open for attributes.
    pub fn start_element(&mut self, name: &str) -> XmlResult<()> {
        self.seal_tag()?;
        if let Some((_, c)) = self.stack.last_mut() {
            c.wrote_element = true;
        }
        if self.opts.indent.is_some() && !self.stack.is_empty() {
            self.newline_indent(self.stack.len())?;
        }
        self.raw("<")?;
        self.raw(name)?;
        self.stack.push((name.to_string(), Content::default()));
        self.tag_open = true;
        Ok(())
    }

    /// Add an attribute to the currently open start tag.
    pub fn attribute(&mut self, name: &str, value: &str) -> XmlResult<()> {
        if !self.tag_open {
            return Err(XmlError::new(
                XmlErrorKind::WriterMisuse(format!("attribute `{name}` outside a start tag")),
                crate::TextPos::START,
            ));
        }
        self.raw(" ")?;
        self.raw(name)?;
        self.raw("=\"")?;
        let v = escape_attr(value);
        self.raw(&v)?;
        self.raw("\"")
    }

    /// Close the most recently opened element. Collapses `<a></a>` to `<a/>`
    /// when nothing was written inside it.
    pub fn end_element(&mut self) -> XmlResult<()> {
        let (name, content) = self.stack.pop().ok_or_else(|| {
            XmlError::new(
                XmlErrorKind::WriterMisuse("end_element() with no open element".into()),
                crate::TextPos::START,
            )
        })?;
        if self.tag_open {
            self.raw("/>")?;
            self.tag_open = false;
        } else {
            // Indent the close tag only for element-only content; mixed or
            // text content must not gain whitespace.
            if content.wrote_element && !content.wrote_text && self.opts.indent.is_some() {
                self.newline_indent(self.stack.len())?;
            }
            self.raw("</")?;
            self.raw(&name)?;
            self.raw(">")?;
        }
        Ok(())
    }

    /// Write escaped character data.
    pub fn text(&mut self, content: &str) -> XmlResult<()> {
        if content.is_empty() {
            return Ok(());
        }
        self.seal_tag()?;
        if let Some((_, c)) = self.stack.last_mut() {
            c.wrote_text = true;
        }
        let escaped = escape_text(content);
        self.raw(&escaped)
    }

    /// Write a comment.
    pub fn comment(&mut self, content: &str) -> XmlResult<()> {
        self.seal_tag()?;
        if let Some((_, c)) = self.stack.last_mut() {
            c.wrote_text = true;
        }
        self.raw("<!--")?;
        self.raw(content)?;
        self.raw("-->")
    }

    /// Write pre-escaped markup verbatim. Used by the engine when copying
    /// buffered subtrees whose serialization is already known to be valid.
    pub fn raw_markup(&mut self, markup: &str) -> XmlResult<()> {
        self.seal_tag()?;
        if let Some((_, c)) = self.stack.last_mut() {
            c.wrote_text = true;
        }
        self.raw(markup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(f: impl FnOnce(&mut XmlWriter<Vec<u8>>)) -> String {
        let mut w = XmlWriter::new(Vec::new());
        f(&mut w);
        String::from_utf8(w.finish().unwrap()).unwrap()
    }

    #[test]
    fn nested_elements_and_text() {
        let out = build(|w| {
            w.start_element("bib").unwrap();
            w.start_element("book").unwrap();
            w.text("T & A").unwrap();
            w.end_element().unwrap();
            w.end_element().unwrap();
        });
        assert_eq!(out, "<bib><book>T &amp; A</book></bib>");
    }

    #[test]
    fn empty_element_collapses() {
        let out = build(|w| {
            w.start_element("a").unwrap();
            w.end_element().unwrap();
        });
        assert_eq!(out, "<a/>");
    }

    #[test]
    fn attributes_escaped() {
        let out = build(|w| {
            w.start_element("a").unwrap();
            w.attribute("x", "1\"2<3").unwrap();
            w.end_element().unwrap();
        });
        assert_eq!(out, "<a x=\"1&quot;2&lt;3\"/>");
    }

    #[test]
    fn attribute_outside_tag_is_misuse() {
        let mut w = XmlWriter::new(Vec::new());
        w.start_element("a").unwrap();
        w.text("x").unwrap();
        let err = w.attribute("k", "v").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::WriterMisuse(_)));
    }

    #[test]
    fn end_without_start_is_misuse() {
        let mut w = XmlWriter::new(Vec::new());
        assert!(w.end_element().is_err());
    }

    #[test]
    fn finish_with_open_elements_is_misuse() {
        let mut w = XmlWriter::new(Vec::new());
        w.start_element("a").unwrap();
        assert!(w.finish().is_err());
    }

    #[test]
    fn pretty_printing_indents() {
        let mut w = XmlWriter::with_options(
            Vec::new(),
            WriterOptions {
                indent: Some("  ".into()),
            },
        );
        w.start_element("a").unwrap();
        w.start_element("b").unwrap();
        w.text("x").unwrap();
        w.end_element().unwrap();
        w.start_element("c").unwrap();
        w.end_element().unwrap();
        w.end_element().unwrap();
        let out = String::from_utf8(w.finish().unwrap()).unwrap();
        assert_eq!(out, "<a>\n  <b>x</b>\n  <c/>\n</a>");
    }

    #[test]
    fn bytes_written_counts() {
        let mut w = XmlWriter::new(Vec::new());
        w.start_element("ab").unwrap();
        w.end_element().unwrap();
        assert_eq!(w.bytes_written(), 5); // `<ab/>`
    }

    #[test]
    fn output_reparses() {
        let out = build(|w| {
            w.start_element("r").unwrap();
            w.attribute("k", "a&b").unwrap();
            w.text("1 < 2").unwrap();
            w.comment("note").unwrap();
            w.end_element().unwrap();
        });
        let mut t = crate::Tokenizer::from_str(&out);
        let mut texts = Vec::new();
        while let Some(tok) = t.next_token().unwrap() {
            if let crate::Token::Text(s) = tok {
                texts.push(s.to_string());
            }
        }
        assert_eq!(texts, ["1 < 2"]);
    }
}
