//! Pull-based XML tokenizer: an I/O adapter over the sans-IO core.
//!
//! All tokenization logic lives in [`PushTokenizer`] (see [`crate::push`]);
//! [`Tokenizer`] merely pumps it: whenever the core reports
//! [`TokenStep::NeedMoreData`], the adapter reads the next chunk from its
//! [`Read`] source straight into the core's window (no intermediate copy)
//! and retries. Arbitrarily large documents stream through bounded memory —
//! the window only ever holds the bytes of the token currently being
//! assembled plus unread lookahead.
//!
//! ## Allocation discipline
//!
//! Inherited from the push core: the steady-state token loop performs
//! **no heap allocation**. All returned tokens borrow the core's buffers
//! and are valid until the next call.
//!
//! ## Line endings and attribute whitespace
//!
//! Per XML 1.0 §2.11 the tokenizer normalizes `\r\n` and bare `\r` to `\n`
//! in character data (including CDATA). Attribute values additionally get
//! §3.3.3 attribute-value normalization: literal whitespace becomes a
//! space (CDATA-type attributes — there is no DTD). Characters produced by
//! character references (`&#13;`, `&#10;`, `&#9;`) are exempt, per spec.

use crate::error::{XmlError, XmlErrorKind, XmlResult};
use crate::pos::TextPos;
use crate::push::{PushTokenizer, TokenStep};
use crate::token::Token;
use std::io::Read;

const READ_CHUNK: usize = 64 * 1024;

/// Configuration for the tokenizer.
#[derive(Debug, Clone)]
pub struct TokenizerOptions {
    /// Enforce balanced tags, a single document element, and no character
    /// data outside it. On by default.
    pub check_well_formed: bool,
    /// Permit document fragments: multiple top-level elements and top-level
    /// text. Implies relaxing the single-root rule. Off by default.
    pub allow_fragments: bool,
}

impl Default for TokenizerOptions {
    fn default() -> Self {
        TokenizerOptions {
            check_well_formed: true,
            allow_fragments: false,
        }
    }
}

/// Streaming pull tokenizer over any [`Read`] source. See the
/// [crate docs](crate) for an example, and [`PushTokenizer`] for the
/// underlying sans-IO state machine.
pub struct Tokenizer<R> {
    core: PushTokenizer,
    src: R,
}

impl<'s> Tokenizer<std::io::Cursor<&'s [u8]>> {
    /// Tokenize an in-memory string (tests, small documents).
    /// (Not the `FromStr` trait: this borrows from the input.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &'s str) -> Self {
        Tokenizer::new(std::io::Cursor::new(s.as_bytes()))
    }

    /// Tokenize an in-memory byte slice.
    pub fn from_bytes(b: &'s [u8]) -> Self {
        Tokenizer::new(std::io::Cursor::new(b))
    }
}

impl<R: Read> Tokenizer<R> {
    /// Tokenizer with default options (well-formedness checking on).
    pub fn new(src: R) -> Self {
        Tokenizer::with_options(src, TokenizerOptions::default())
    }

    /// Tokenizer with explicit options.
    pub fn with_options(src: R, opts: TokenizerOptions) -> Self {
        Tokenizer {
            core: PushTokenizer::with_options(opts),
            src,
        }
    }

    /// Current position: the first byte of the *next* token to be returned.
    pub fn position(&self) -> TextPos {
        self.core.position()
    }

    /// Depth of currently open elements (well-formedness checking only).
    pub fn depth(&self) -> usize {
        self.core.depth()
    }

    /// Produce the next token, or `None` at a clean end of input.
    ///
    /// The returned token borrows the tokenizer's internal buffers and is
    /// valid until the next call.
    pub fn next_token(&mut self) -> XmlResult<Option<Token<'_>>> {
        loop {
            match self.core.step()? {
                TokenStep::Token => break,
                TokenStep::End => return Ok(None),
                TokenStep::NeedMoreData => {
                    // Read straight into the core's window; a short read is
                    // fine (the core asks again), zero bytes is EOF.
                    let gap = self.core.space(READ_CHUNK);
                    let n = self.src.read(gap).map_err(|e| XmlError {
                        kind: XmlErrorKind::Io(e),
                        pos: self.core.position(),
                    })?;
                    if n == 0 {
                        self.core.finish_input();
                    } else {
                        self.core.commit(n);
                    }
                }
            }
        }
        Ok(Some(self.core.token()))
    }

    /// Drive the tokenizer to the end of input, validating everything.
    /// Returns the number of tokens seen. Useful for well-formedness checks.
    pub fn validate_to_end(&mut self) -> XmlResult<u64> {
        let mut n = 0;
        while self.next_token()?.is_some() {
            n += 1;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XmlErrorKind as K;

    /// Collect all tokens as owned debug strings for simple assertions.
    fn toks(input: &str) -> Vec<String> {
        let mut t = Tokenizer::from_str(input);
        let mut out = Vec::new();
        loop {
            match t.next_token() {
                Ok(Some(tok)) => out.push(format!("{tok:?}")),
                Ok(None) => break,
                Err(e) => {
                    out.push(format!("ERR {e}"));
                    break;
                }
            }
        }
        out
    }

    fn kinds(input: &str) -> Vec<&'static str> {
        let mut t = Tokenizer::from_str(input);
        let mut out = Vec::new();
        while let Some(tok) = t.next_token().unwrap() {
            out.push(match tok {
                Token::StartTag(_) => "start",
                Token::EndTag { .. } => "end",
                Token::Text(_) => "text",
                Token::Comment(_) => "comment",
                Token::ProcessingInstruction { .. } => "pi",
                Token::Doctype(_) => "doctype",
            });
        }
        out
    }

    #[test]
    fn simple_document() {
        assert_eq!(
            kinds("<a><b>hi</b></a>"),
            ["start", "start", "text", "end", "end"]
        );
    }

    #[test]
    fn self_closing_tag() {
        let mut t = Tokenizer::from_str("<a><b/></a>");
        t.next_token().unwrap();
        match t.next_token().unwrap().unwrap() {
            Token::StartTag(s) => {
                assert_eq!(s.name, "b");
                assert!(s.self_closing);
            }
            other => panic!("expected start tag, got {other:?}"),
        }
    }

    #[test]
    fn attributes_parse_with_both_quotes() {
        let mut t = Tokenizer::from_str(r#"<a x="1" y='two' z = "3"/>"#);
        match t.next_token().unwrap().unwrap() {
            Token::StartTag(s) => {
                assert_eq!(s.attrs.len(), 3);
                assert_eq!(s.attrs.get(0).unwrap().name, "x");
                assert_eq!(s.attrs.get(0).unwrap().value, "1");
                assert_eq!(s.attrs.get(1).unwrap().value, "two");
                assert_eq!(s.attrs.get(2).unwrap().value, "3");
                assert_eq!(s.attrs.value_of("y"), Some("two"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn attribute_entities_resolved() {
        let mut t = Tokenizer::from_str(r#"<a x="a&amp;b&lt;c"/>"#);
        match t.next_token().unwrap().unwrap() {
            Token::StartTag(s) => assert_eq!(s.attrs.get(0).unwrap().value, "a&b<c"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn gt_inside_attribute_value() {
        let mut t = Tokenizer::from_str(r#"<a x="1>2">t</a>"#);
        match t.next_token().unwrap().unwrap() {
            Token::StartTag(s) => assert_eq!(s.attrs.get(0).unwrap().value, "1>2"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn text_entities_resolved() {
        let mut t = Tokenizer::from_str("<a>x &amp; y &#65;</a>");
        t.next_token().unwrap();
        match t.next_token().unwrap().unwrap() {
            Token::Text(s) => assert_eq!(s, "x & y A"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn comment_token() {
        let mut t = Tokenizer::from_str("<a><!-- hi -- there --></a>");
        t.next_token().unwrap();
        match t.next_token().unwrap().unwrap() {
            Token::Comment(c) => assert_eq!(c, " hi -- there "),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cdata_is_verbatim_text() {
        let mut t = Tokenizer::from_str("<a><![CDATA[x < y & z]]></a>");
        t.next_token().unwrap();
        match t.next_token().unwrap().unwrap() {
            Token::Text(s) => assert_eq!(s, "x < y & z"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn xml_declaration_is_pi() {
        let mut t = Tokenizer::from_str("<?xml version=\"1.0\"?><a/>");
        match t.next_token().unwrap().unwrap() {
            Token::ProcessingInstruction { target, data } => {
                assert_eq!(target, "xml");
                assert_eq!(data, "version=\"1.0\"");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn doctype_with_internal_subset() {
        let mut t =
            Tokenizer::from_str("<!DOCTYPE site [ <!ELEMENT a (b)> <!ENTITY x \"y\"> ]><site/>");
        match t.next_token().unwrap().unwrap() {
            Token::Doctype(d) => assert!(d.contains("ELEMENT")),
            other => panic!("{other:?}"),
        }
        match t.next_token().unwrap().unwrap() {
            Token::StartTag(s) => assert_eq!(s.name, "site"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mismatched_tags_detected() {
        let mut t = Tokenizer::from_str("<a><b></a></b>");
        t.next_token().unwrap();
        t.next_token().unwrap();
        let err = loop {
            match t.next_token() {
                Err(e) => break e,
                Ok(Some(_)) => {}
                Ok(None) => panic!("expected error"),
            }
        };
        assert!(matches!(err.kind, K::MismatchedTag { .. }));
    }

    #[test]
    fn unclosed_elements_detected_at_eof() {
        let mut t = Tokenizer::from_str("<a><b>");
        t.next_token().unwrap();
        t.next_token().unwrap();
        let err = t.next_token().unwrap_err();
        match err.kind {
            K::UnclosedElements(names) => assert_eq!(names, ["a", "b"]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stray_end_tag_detected() {
        let mut t = Tokenizer::from_str("</a>");
        let err = t.next_token().unwrap_err();
        assert!(matches!(err.kind, K::UnexpectedEndTag(_)));
    }

    #[test]
    fn second_root_rejected() {
        let mut t = Tokenizer::from_str("<a/><b/>");
        t.next_token().unwrap();
        let err = loop {
            match t.next_token() {
                Err(e) => break e,
                Ok(Some(_)) => {}
                Ok(None) => panic!("expected error"),
            }
        };
        assert!(matches!(err.kind, K::TrailingContent));
    }

    #[test]
    fn fragments_allowed_when_opted_in() {
        let opts = TokenizerOptions {
            allow_fragments: true,
            ..Default::default()
        };
        let mut t = Tokenizer::with_options(std::io::Cursor::new(b"<a/>text<b/>".as_slice()), opts);
        let mut n = 0;
        while t.next_token().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 3);
    }

    #[test]
    fn text_outside_root_rejected() {
        let mut t = Tokenizer::from_str("hello<a/>");
        let err = t.next_token().unwrap_err();
        assert!(matches!(err.kind, K::TextOutsideRoot));
    }

    #[test]
    fn whitespace_outside_root_ok() {
        assert_eq!(kinds("  <a/>\n"), ["text", "start", "text"]);
    }

    #[test]
    fn bad_entity_in_text() {
        let mut t = Tokenizer::from_str("<a>&nope;</a>");
        t.next_token().unwrap();
        let err = t.next_token().unwrap_err();
        assert!(matches!(err.kind, K::BadEntity(_)));
    }

    #[test]
    fn invalid_name_rejected() {
        let out = toks("<1abc/>");
        assert!(out[0].starts_with("ERR"), "{out:?}");
    }

    #[test]
    fn empty_document_is_error() {
        let mut t = Tokenizer::from_str("");
        let err = t.next_token().unwrap_err();
        assert!(matches!(err.kind, K::UnexpectedEof { .. }));
    }

    #[test]
    fn truncated_tag_is_error() {
        let mut t = Tokenizer::from_str("<a><b attr=\"x");
        t.next_token().unwrap();
        let err = t.next_token().unwrap_err();
        assert!(matches!(err.kind, K::UnexpectedEof { .. }));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let mut t = Tokenizer::from_str(r#"<a x="1" x="2"/>"#);
        let err = t.next_token().unwrap_err();
        assert!(matches!(err.kind, K::Syntax(_)));
    }

    #[test]
    fn unquoted_attribute_rejected() {
        let mut t = Tokenizer::from_str("<a x=1/>");
        assert!(t.next_token().is_err());
    }

    #[test]
    fn position_tracking_across_lines() {
        let mut t = Tokenizer::from_str("<a>\n  <b/>\n</a>");
        t.next_token().unwrap(); // <a>
        t.next_token().unwrap(); // text
        assert_eq!(t.position().line, 2);
        assert_eq!(t.position().column, 3);
    }

    #[test]
    fn streaming_across_tiny_reads() {
        /// A reader that returns one byte at a time, exercising every refill
        /// path in the tokenizer.
        struct OneByte<'a>(&'a [u8]);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.0.is_empty() {
                    return Ok(0);
                }
                buf[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let doc = "<bib><book id=\"b&amp;1\"><title>T</title><!--c--></book></bib>";
        let mut t = Tokenizer::new(OneByte(doc.as_bytes()));
        let mut n = 0;
        while t.next_token().unwrap().is_some() {
            n += 1;
        }
        // bib, book, title, "T", /title, comment, /book, /bib
        assert_eq!(n, 8);
    }

    #[test]
    fn validate_to_end_counts_tokens() {
        let mut t = Tokenizer::from_str("<a><b/><c/></a>");
        assert_eq!(t.validate_to_end().unwrap(), 4);
    }

    #[test]
    fn depth_reflects_open_elements() {
        let mut t = Tokenizer::from_str("<a><b><c/></b></a>");
        t.next_token().unwrap();
        t.next_token().unwrap();
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn large_text_spanning_chunks() {
        let big = "x".repeat(300_000);
        let doc = format!("<a>{big}</a>");
        let mut t = Tokenizer::from_str(&doc);
        t.next_token().unwrap();
        match t.next_token().unwrap().unwrap() {
            Token::Text(s) => assert_eq!(s.len(), 300_000),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn crlf_normalized_in_text() {
        let mut t = Tokenizer::from_str("<a>line1\r\nline2\rline3\nline4</a>");
        t.next_token().unwrap();
        match t.next_token().unwrap().unwrap() {
            Token::Text(s) => assert_eq!(s, "line1\nline2\nline3\nline4"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn crlf_normalized_in_attributes() {
        // §2.11 (CRLF/CR → LF) composed with §3.3.3 (literal whitespace →
        // space, for CDATA-type attributes): conformant parsers report
        // spaces here.
        let mut t = Tokenizer::from_str("<a x=\"v1\r\nv2\rv3\" y=\"a\nb\tc\"/>");
        match t.next_token().unwrap().unwrap() {
            Token::StartTag(s) => {
                assert_eq!(s.attrs.get(0).unwrap().value, "v1 v2 v3");
                assert_eq!(s.attrs.get(1).unwrap().value, "a b c");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn crlf_normalized_in_cdata() {
        let mut t = Tokenizer::from_str("<a><![CDATA[x\r\ny\rz]]></a>");
        t.next_token().unwrap();
        match t.next_token().unwrap().unwrap() {
            Token::Text(s) => assert_eq!(s, "x\ny\nz"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn character_reference_cr_survives_normalization() {
        // &#13; is a character reference, exempt from §2.11 normalization.
        let mut t = Tokenizer::from_str("<a>x&#13;y</a>");
        t.next_token().unwrap();
        match t.next_token().unwrap().unwrap() {
            Token::Text(s) => assert_eq!(s, "x\ry"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn crlf_between_markup_normalized() {
        assert_eq!(
            kinds("<a>\r\n<b/>\r\n</a>"),
            ["start", "text", "start", "text", "end"]
        );
        let mut t = Tokenizer::from_str("<a>\r\n<b/></a>");
        t.next_token().unwrap();
        match t.next_token().unwrap().unwrap() {
            Token::Text(s) => assert_eq!(s, "\n"),
            other => panic!("{other:?}"),
        }
    }
}
