//! Incremental, pull-based XML tokenizer.
//!
//! The tokenizer reads from any [`Read`] source through an internal growable
//! window buffer, so arbitrarily large documents stream through bounded
//! memory (the window only ever holds the bytes of the token currently being
//! assembled plus unread lookahead). This is the token source of the GCX
//! architecture: the stream preprojector calls [`Tokenizer::next_token`] once
//! per `nextNode()` request chain.
//!
//! ## Allocation discipline
//!
//! The steady-state token loop performs **no heap allocation**: the
//! well-formedness stack stores open names back-to-back in one reusable
//! string arena, attribute spans live in a reusable scratch vector, and
//! rewritten text/attribute values go into reusable arenas. All returned
//! tokens borrow these buffers and are valid until the next call.
//!
//! ## Line endings and attribute whitespace
//!
//! Per XML 1.0 §2.11 the tokenizer normalizes `\r\n` and bare `\r` to `\n`
//! in character data (including CDATA). Attribute values additionally get
//! §3.3.3 attribute-value normalization: literal whitespace becomes a
//! space (CDATA-type attributes — there is no DTD). Characters produced by
//! character references (`&#13;`, `&#10;`, `&#9;`) are exempt, per spec.

use crate::error::{XmlError, XmlErrorKind, XmlResult};
use crate::escape::{normalize_attr_into, normalize_newlines_into, normalize_unescape_into};
use crate::pos::TextPos;
use crate::token::{AttrSpan, Attrs, StartTag, Token};
use std::io::Read;

const READ_CHUNK: usize = 64 * 1024;

/// Configuration for the tokenizer.
#[derive(Debug, Clone)]
pub struct TokenizerOptions {
    /// Enforce balanced tags, a single document element, and no character
    /// data outside it. On by default.
    pub check_well_formed: bool,
    /// Permit document fragments: multiple top-level elements and top-level
    /// text. Implies relaxing the single-root rule. Off by default.
    pub allow_fragments: bool,
}

impl Default for TokenizerOptions {
    fn default() -> Self {
        TokenizerOptions {
            check_well_formed: true,
            allow_fragments: false,
        }
    }
}

/// Streaming XML tokenizer. See the [crate docs](crate) for an example.
pub struct Tokenizer<R> {
    src: R,
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (start of the unread window).
    lo: usize,
    /// End of valid bytes in `buf`.
    hi: usize,
    src_eof: bool,
    pos: TextPos,
    opts: TokenizerOptions,
    /// Open element names (well-formedness only): start offsets into
    /// `stack_arena`, where names are stored back-to-back.
    stack: Vec<u32>,
    stack_arena: String,
    seen_root: bool,
    /// Scratch for rewritten (unescaped/normalized) text so we can lend it
    /// borrowed.
    text_scratch: String,
    /// Scratch for the current start tag's attribute spans.
    attr_spans: Vec<AttrSpan>,
    /// Arena for attribute values that needed rewriting.
    attr_arena: String,
    /// Set once EOF has been fully validated and reported.
    done: bool,
}

/// What kind of markup construct starts at the current `<`.
enum MarkupKind {
    Comment,
    CData,
    Doctype,
    Pi,
    EndTag,
    StartTag,
}

impl<'s> Tokenizer<std::io::Cursor<&'s [u8]>> {
    /// Tokenize an in-memory string (tests, small documents).
    /// (Not the `FromStr` trait: this borrows from the input.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &'s str) -> Self {
        Tokenizer::new(std::io::Cursor::new(s.as_bytes()))
    }

    /// Tokenize an in-memory byte slice.
    pub fn from_bytes(b: &'s [u8]) -> Self {
        Tokenizer::new(std::io::Cursor::new(b))
    }
}

impl<R: Read> Tokenizer<R> {
    /// Tokenizer with default options (well-formedness checking on).
    pub fn new(src: R) -> Self {
        Tokenizer::with_options(src, TokenizerOptions::default())
    }

    /// Tokenizer with explicit options.
    pub fn with_options(src: R, opts: TokenizerOptions) -> Self {
        Tokenizer {
            src,
            buf: Vec::new(),
            lo: 0,
            hi: 0,
            src_eof: false,
            pos: TextPos::START,
            opts,
            stack: Vec::new(),
            stack_arena: String::new(),
            seen_root: false,
            text_scratch: String::new(),
            attr_spans: Vec::new(),
            attr_arena: String::new(),
            done: false,
        }
    }

    /// Current position: the first byte of the *next* token to be returned.
    pub fn position(&self) -> TextPos {
        self.pos
    }

    /// Depth of currently open elements (well-formedness checking only).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// The open element names, outermost first (error reporting).
    fn open_names(&self) -> Vec<String> {
        self.stack
            .iter()
            .enumerate()
            .map(|(i, &start)| {
                let end = self
                    .stack
                    .get(i + 1)
                    .map(|&e| e as usize)
                    .unwrap_or(self.stack_arena.len());
                self.stack_arena[start as usize..end].to_string()
            })
            .collect()
    }

    // ---- buffer management -------------------------------------------------

    /// Number of unread bytes currently buffered.
    fn avail(&self) -> usize {
        self.hi - self.lo
    }

    /// Pull more bytes from the source. Returns false at source EOF.
    fn fill(&mut self) -> XmlResult<bool> {
        if self.src_eof {
            return Ok(false);
        }
        // Compact the consumed prefix before growing.
        if self.lo > 0 && (self.buf.len() - self.hi) < READ_CHUNK {
            self.buf.copy_within(self.lo..self.hi, 0);
            self.hi -= self.lo;
            self.lo = 0;
        }
        if self.buf.len() - self.hi < READ_CHUNK {
            self.buf.resize(self.hi + READ_CHUNK, 0);
        }
        let n = self
            .src
            .read(&mut self.buf[self.hi..])
            .map_err(|e| XmlError {
                kind: XmlErrorKind::Io(e),
                pos: self.pos,
            })?;
        if n == 0 {
            self.src_eof = true;
            return Ok(false);
        }
        self.hi += n;
        Ok(true)
    }

    /// Ensure at least `n` unread bytes are buffered; false if EOF prevents it.
    fn ensure(&mut self, n: usize) -> XmlResult<bool> {
        while self.avail() < n {
            if !self.fill()? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Find `needle` in the unread window starting at relative offset
    /// `from`, filling as needed. Returns the relative offset of the match.
    fn find(&mut self, from: usize, needle: &[u8]) -> XmlResult<Option<usize>> {
        let mut search_from = from;
        loop {
            let window = &self.buf[self.lo..self.hi];
            if window.len() >= needle.len() {
                let hay = &window[search_from.min(window.len())..];
                if let Some(i) = find_sub(hay, needle) {
                    return Ok(Some(search_from + i));
                }
                // Keep the last needle.len()-1 bytes re-searchable across fills.
                search_from = window.len().saturating_sub(needle.len() - 1).max(from);
            }
            if !self.fill()? {
                return Ok(None);
            }
        }
    }

    /// Consume `n` bytes, updating the position.
    fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.avail());
        self.pos.advance(&self.buf[self.lo..self.lo + n]);
        self.lo += n;
    }

    fn err_eof(&self, context: &'static str) -> XmlError {
        XmlError::new(XmlErrorKind::UnexpectedEof { context }, self.pos)
    }

    // ---- tokenization ------------------------------------------------------

    /// Produce the next token, or `None` at a clean end of input.
    ///
    /// The returned token borrows the tokenizer's internal buffers and is
    /// valid until the next call.
    pub fn next_token(&mut self) -> XmlResult<Option<Token<'_>>> {
        if self.done {
            return Ok(None);
        }
        if !self.ensure(1)? {
            // Clean EOF: validate well-formedness closure.
            self.done = true;
            if self.opts.check_well_formed {
                if !self.stack.is_empty() {
                    return Err(XmlError::new(
                        XmlErrorKind::UnclosedElements(self.open_names()),
                        self.pos,
                    ));
                }
                if !self.seen_root && !self.opts.allow_fragments {
                    return Err(self.err_eof("document element"));
                }
            }
            return Ok(None);
        }
        if self.buf[self.lo] == b'<' {
            self.next_markup()
        } else {
            self.next_text()
        }
    }

    /// Drive the tokenizer to the end of input, validating everything.
    /// Returns the number of tokens seen. Useful for well-formedness checks.
    pub fn validate_to_end(&mut self) -> XmlResult<u64> {
        let mut n = 0;
        while self.next_token()?.is_some() {
            n += 1;
        }
        Ok(n)
    }

    fn next_text(&mut self) -> XmlResult<Option<Token<'_>>> {
        // Locate the end of the text run: the next '<' or EOF.
        let end = match self.find(0, b"<")? {
            Some(i) => i,
            None => self.avail(),
        };
        let start_pos = self.pos;
        let raw = &self.buf[self.lo..self.lo + end];
        let raw = std::str::from_utf8(raw)
            .map_err(|_| XmlError::new(XmlErrorKind::InvalidUtf8, start_pos))?;
        // Outside the document element only whitespace is allowed.
        if self.opts.check_well_formed
            && !self.opts.allow_fragments
            && self.stack.is_empty()
            && !raw.bytes().all(|b| b.is_ascii_whitespace())
        {
            return Err(XmlError::new(XmlErrorKind::TextOutsideRoot, start_pos));
        }
        // Entity resolution and line-ending normalization share one rewrite
        // pass into the reusable scratch; clean runs are lent borrowed.
        let needs_rewrite = raw.bytes().any(|b| b == b'&' || b == b'\r');
        if needs_rewrite {
            self.text_scratch.clear();
            let raw_range = self.lo..self.lo + end; // defer slice re-borrow
            let raw2 = revalidated(&self.buf[raw_range]);
            if let Err(entity) = normalize_unescape_into(raw2, &mut self.text_scratch) {
                let entity = entity.to_string();
                return Err(XmlError::new(XmlErrorKind::BadEntity(entity), start_pos));
            }
        }
        self.consume(end);
        if needs_rewrite {
            Ok(Some(Token::Text(&self.text_scratch)))
        } else {
            let s = revalidated(&self.buf[self.lo - end..self.lo]);
            Ok(Some(Token::Text(s)))
        }
    }

    fn classify_markup(&mut self) -> XmlResult<MarkupKind> {
        // We have '<' at lo. Peek a handful of bytes to classify.
        self.ensure(2)?;
        if self.avail() < 2 {
            return Err(self.err_eof("markup"));
        }
        Ok(match self.buf[self.lo + 1] {
            b'/' => MarkupKind::EndTag,
            b'?' => MarkupKind::Pi,
            b'!' => {
                // <!-- | <![CDATA[ | <!DOCTYPE
                if self.ensure(4)? && &self.buf[self.lo + 2..self.lo + 4] == b"--" {
                    MarkupKind::Comment
                } else if self.ensure(9)? && &self.buf[self.lo + 2..self.lo + 9] == b"[CDATA[" {
                    MarkupKind::CData
                } else {
                    MarkupKind::Doctype
                }
            }
            _ => MarkupKind::StartTag,
        })
    }

    fn next_markup(&mut self) -> XmlResult<Option<Token<'_>>> {
        let start_pos = self.pos;
        match self.classify_markup()? {
            MarkupKind::Comment => {
                let end = self
                    .find(4, b"-->")?
                    .ok_or_else(|| self.err_eof("comment"))?;
                let total = end + 3;
                let content = check_utf8(&self.buf[self.lo + 4..self.lo + end], start_pos)?;
                let _ = content;
                self.consume(total);
                let s = revalidated(&self.buf[self.lo - total + 4..self.lo - 3]);
                Ok(Some(Token::Comment(s)))
            }
            MarkupKind::CData => {
                let end = self
                    .find(9, b"]]>")?
                    .ok_or_else(|| self.err_eof("CDATA section"))?;
                let total = end + 3;
                let raw = check_utf8(&self.buf[self.lo + 9..self.lo + end], start_pos)?;
                let needs_rewrite = raw.bytes().any(|b| b == b'\r');
                if self.opts.check_well_formed
                    && !self.opts.allow_fragments
                    && self.stack.is_empty()
                {
                    return Err(XmlError::new(XmlErrorKind::TextOutsideRoot, start_pos));
                }
                if needs_rewrite {
                    // §2.11 applies inside CDATA too (no entity processing).
                    self.text_scratch.clear();
                    let raw_range = self.lo + 9..self.lo + end;
                    let raw2 = revalidated(&self.buf[raw_range]);
                    normalize_newlines_into(raw2, &mut self.text_scratch);
                }
                self.consume(total);
                if needs_rewrite {
                    Ok(Some(Token::Text(&self.text_scratch)))
                } else {
                    let s = revalidated(&self.buf[self.lo - total + 9..self.lo - 3]);
                    Ok(Some(Token::Text(s)))
                }
            }
            MarkupKind::Doctype => {
                // Scan for '>' at zero square-bracket depth (internal subset).
                let end = self.find_doctype_end()?;
                let total = end + 1;
                check_utf8(&self.buf[self.lo + 2..self.lo + end], start_pos)?;
                self.consume(total);
                let s = revalidated(&self.buf[self.lo - total + 2..self.lo - 1]);
                Ok(Some(Token::Doctype(s)))
            }
            MarkupKind::Pi => {
                let end = self
                    .find(2, b"?>")?
                    .ok_or_else(|| self.err_eof("processing instruction"))?;
                let total = end + 2;
                let body = check_utf8(&self.buf[self.lo + 2..self.lo + end], start_pos)?;
                let target_len = body
                    .char_indices()
                    .find(|(_, c)| c.is_whitespace())
                    .map(|(i, _)| i)
                    .unwrap_or(body.len());
                if target_len == 0 {
                    return Err(XmlError::syntax(
                        "processing instruction without target",
                        start_pos,
                    ));
                }
                let data_off = body[target_len..]
                    .char_indices()
                    .find(|(_, c)| !c.is_whitespace())
                    .map(|(i, _)| target_len + i)
                    .unwrap_or(body.len());
                self.consume(total);
                let body = revalidated(&self.buf[self.lo - total + 2..self.lo - 2]);
                Ok(Some(Token::ProcessingInstruction {
                    target: &body[..target_len],
                    data: &body[data_off..],
                }))
            }
            MarkupKind::EndTag => {
                let end = self.find(2, b">")?.ok_or_else(|| self.err_eof("end tag"))?;
                let total = end + 1;
                let name = check_utf8(&self.buf[self.lo + 2..self.lo + end], start_pos)?.trim();
                validate_name(name, start_pos)?;
                if self.opts.check_well_formed {
                    match self.stack.pop() {
                        None => {
                            return Err(XmlError::new(
                                XmlErrorKind::UnexpectedEndTag(name.to_string()),
                                start_pos,
                            ))
                        }
                        Some(open_start) => {
                            let open = &self.stack_arena[open_start as usize..];
                            if open != name {
                                return Err(XmlError::new(
                                    XmlErrorKind::MismatchedTag {
                                        expected: open.to_string(),
                                        found: name.to_string(),
                                    },
                                    start_pos,
                                ));
                            }
                            self.stack_arena.truncate(open_start as usize);
                        }
                    }
                }
                let name_rel = {
                    // Name position inside the markup for re-borrowing below.
                    let body = revalidated(&self.buf[self.lo + 2..self.lo + end]);
                    let lead = body.len() - body.trim_start().len();
                    (2 + lead, 2 + lead + name.len())
                };
                self.consume(total);
                let s = std::str::from_utf8(
                    &self.buf[self.lo - total + name_rel.0..self.lo - total + name_rel.1],
                )
                .unwrap();
                Ok(Some(Token::EndTag { name: s }))
            }
            MarkupKind::StartTag => self.next_start_tag(start_pos),
        }
    }

    /// Find the '>' that ends a DOCTYPE, respecting `[ ... ]` internal subsets.
    fn find_doctype_end(&mut self) -> XmlResult<usize> {
        let mut i = 1;
        let mut depth = 0usize;
        loop {
            while i >= self.avail() {
                if !self.fill()? {
                    return Err(self.err_eof("DOCTYPE declaration"));
                }
            }
            match self.buf[self.lo + i] {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'>' if depth == 0 => return Ok(i),
                _ => {}
            }
            i += 1;
        }
    }

    /// Find the '>' ending a start tag, skipping quoted attribute values.
    /// Both the unquoted scan (for `" ' > <`) and the in-quote scan (for
    /// the close quote) run word-at-a-time.
    fn find_tag_end(&mut self) -> XmlResult<usize> {
        let mut i = 1;
        let mut quote: Option<u8> = None;
        loop {
            while i >= self.avail() {
                if !self.fill()? {
                    return Err(self.err_eof("start tag"));
                }
            }
            match quote {
                Some(q) => {
                    // Inside a quoted value: skip straight to the close quote.
                    let hay = &self.buf[self.lo + i..self.hi];
                    match memchr1(q, hay) {
                        Some(p) => {
                            i += p + 1;
                            quote = None;
                            continue;
                        }
                        None => {
                            i = self.avail();
                            continue;
                        }
                    }
                }
                None => match memchr_tag_delim(&self.buf[self.lo + i..self.hi]) {
                    Some(p) => {
                        i += p;
                        match self.buf[self.lo + i] {
                            b'"' | b'\'' => {
                                quote = Some(self.buf[self.lo + i]);
                                i += 1;
                            }
                            b'>' => return Ok(i),
                            _ => {
                                debug_assert_eq!(self.buf[self.lo + i], b'<');
                                return Err(XmlError::syntax("'<' inside tag", self.pos));
                            }
                        }
                        continue;
                    }
                    None => {
                        i = self.avail();
                        continue;
                    }
                },
            }
        }
    }

    fn next_start_tag(&mut self, start_pos: TextPos) -> XmlResult<Option<Token<'_>>> {
        let end = self.find_tag_end()?;
        let total = end + 1;
        let body = check_utf8(&self.buf[self.lo + 1..self.lo + end], start_pos)?;
        let self_closing = body.ends_with('/');
        let inner = if self_closing {
            &body[..body.len() - 1]
        } else {
            body
        };

        // Parse name.
        let inner_trim_start = inner.trim_start();
        if inner_trim_start.len() != inner.len() {
            return Err(XmlError::syntax(
                "whitespace before element name",
                start_pos,
            ));
        }
        let name_len = inner
            .char_indices()
            .find(|(_, c)| c.is_whitespace() || *c == '=')
            .map(|(i, _)| i)
            .unwrap_or(inner.len());
        let name = &inner[..name_len];
        validate_name(name, start_pos)?;

        // Parse attributes into the reusable span scratch. Spans are
        // relative to `inner`; rewritten values go into the reusable arena.
        self.attr_spans.clear();
        self.attr_arena.clear();
        let bytes = inner.as_bytes();
        let mut i = name_len;
        loop {
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i >= bytes.len() {
                break;
            }
            // attribute name
            let an_start = i;
            while i < bytes.len() && !bytes[i].is_ascii_whitespace() && bytes[i] != b'=' {
                i += 1;
            }
            let an_end = i;
            validate_name(&inner[an_start..an_end], start_pos)?;
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i >= bytes.len() || bytes[i] != b'=' {
                return Err(XmlError::syntax(
                    format!("attribute `{}` without value", &inner[an_start..an_end]),
                    start_pos,
                ));
            }
            i += 1; // '='
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i >= bytes.len() || (bytes[i] != b'"' && bytes[i] != b'\'') {
                return Err(XmlError::syntax(
                    "attribute value must be quoted",
                    start_pos,
                ));
            }
            let q = bytes[i];
            i += 1;
            let av_start = i;
            match memchr1(q, &bytes[i..]) {
                Some(p) => i += p,
                None => {
                    return Err(XmlError::syntax("unterminated attribute value", start_pos));
                }
            }
            let av_end = i;
            i += 1; // closing quote
            let raw_val = &inner[av_start..av_end];
            // Attribute values additionally get §3.3.3 normalization
            // (literal whitespace → space); see `normalize_attr_into`.
            let needs_rewrite = raw_val
                .bytes()
                .any(|b| matches!(b, b'&' | b'\r' | b'\n' | b'\t'));
            let owned = if needs_rewrite {
                let arena_start = self.attr_arena.len() as u32;
                if let Err(entity) = normalize_attr_into(raw_val, &mut self.attr_arena) {
                    return Err(XmlError::new(
                        XmlErrorKind::BadEntity(entity.to_string()),
                        start_pos,
                    ));
                }
                Some((arena_start, self.attr_arena.len() as u32))
            } else {
                None
            };
            self.attr_spans.push(AttrSpan {
                name: (an_start as u32, an_end as u32),
                value: (av_start as u32, av_end as u32),
                owned,
            });
        }

        // Duplicate attribute check (well-formedness constraint).
        if self.opts.check_well_formed {
            for a in 1..self.attr_spans.len() {
                for b in 0..a {
                    let (an, bn) = (self.attr_spans[a].name, self.attr_spans[b].name);
                    if inner[an.0 as usize..an.1 as usize] == inner[bn.0 as usize..bn.1 as usize] {
                        return Err(XmlError::syntax(
                            format!(
                                "duplicate attribute `{}`",
                                &inner[an.0 as usize..an.1 as usize]
                            ),
                            start_pos,
                        ));
                    }
                }
            }
        }

        // Well-formedness: root bookkeeping and open-element stack.
        if self.opts.check_well_formed {
            if self.stack.is_empty() {
                if self.seen_root && !self.opts.allow_fragments {
                    return Err(XmlError::new(XmlErrorKind::TrailingContent, start_pos));
                }
                self.seen_root = true;
            }
            if !self_closing {
                self.stack.push(self.stack_arena.len() as u32);
                self.stack_arena.push_str(name);
            }
        }

        self.consume(total);

        // Re-borrow `inner` from the (now-consumed) window to build the token.
        let base = self.lo - total + 1;
        let inner_len = end - 1 - usize::from(self_closing);
        let inner2 = revalidated(&self.buf[base..base + inner_len]);
        let name2 = &inner2[..name_len];
        Ok(Some(Token::StartTag(StartTag {
            name: name2,
            attrs: Attrs {
                spans: &self.attr_spans,
                body: inner2,
                arena: &self.attr_arena,
            },
            self_closing,
        })))
    }
}

const LANES: usize = std::mem::size_of::<usize>();
const LSB: usize = usize::from_ne_bytes([0x01; LANES]);
const MSB: usize = usize::from_ne_bytes([0x80; LANES]);

/// Load a word so its least significant byte is the FIRST byte in memory
/// (a byte swap on big-endian targets, free on little-endian). The
/// zero-byte detector `(x - LSB) & !x & MSB` can set false-positive bits
/// in lanes *above* the first true match (borrow propagation), so the
/// first-match lane must always be extracted from the low end with
/// `trailing_zeros` — which requires this memory ordering.
#[inline]
fn load_le(bytes: &[u8]) -> usize {
    usize::from_ne_bytes(bytes[..LANES].try_into().unwrap()).to_le()
}

/// SWAR single-byte search: scans one machine word at a time using the
/// classic zero-byte detector, with a scalar tail. This is the accelerated
/// scanner behind [`find_sub`]; the text/markup boundary scans of large
/// documents spend most of their time here.
#[inline]
pub(crate) fn memchr1(needle: u8, hay: &[u8]) -> Option<usize> {
    let broadcast = usize::from_ne_bytes([needle; LANES]);
    let mut i = 0;
    while i + LANES <= hay.len() {
        let x = load_le(&hay[i..]) ^ broadcast;
        let found = x.wrapping_sub(LSB) & !x & MSB;
        if found != 0 {
            return Some(i + (found.trailing_zeros() / 8) as usize);
        }
        i += LANES;
    }
    hay[i..].iter().position(|&b| b == needle).map(|p| i + p)
}

/// SWAR scan for the first start-tag delimiter: `"`, `'`, `>` or `<`.
/// Four zero-byte detectors per word still beat a byte loop by a wide
/// margin; start tags are delimiter-sparse.
#[inline]
fn memchr_tag_delim(hay: &[u8]) -> Option<usize> {
    #[inline]
    fn zero_detect(word: usize, broadcast: usize) -> usize {
        let x = word ^ broadcast;
        x.wrapping_sub(LSB) & !x & MSB
    }
    const DQ: usize = usize::from_ne_bytes([b'"'; LANES]);
    const SQ: usize = usize::from_ne_bytes([b'\''; LANES]);
    const GT: usize = usize::from_ne_bytes([b'>'; LANES]);
    const LT: usize = usize::from_ne_bytes([b'<'; LANES]);
    let mut i = 0;
    while i + LANES <= hay.len() {
        let word = load_le(&hay[i..]);
        let found = zero_detect(word, DQ)
            | zero_detect(word, SQ)
            | zero_detect(word, GT)
            | zero_detect(word, LT);
        if found != 0 {
            // Each detector is exact below its own first true match, so the
            // lowest set lane of the OR is the earliest true delimiter.
            return Some(i + (found.trailing_zeros() / 8) as usize);
        }
        i += LANES;
    }
    hay[i..]
        .iter()
        .position(|&b| matches!(b, b'"' | b'\'' | b'>' | b'<'))
        .map(|p| i + p)
}

/// Substring search: SWAR scan for the first needle byte, then verify the
/// remainder. Needles here are ≤ 3 bytes, so verification is trivial.
fn find_sub(hay: &[u8], needle: &[u8]) -> Option<usize> {
    debug_assert!(!needle.is_empty());
    if needle.len() == 1 {
        return memchr1(needle[0], hay);
    }
    let mut from = 0;
    while from + needle.len() <= hay.len() {
        let i = from + memchr1(needle[0], &hay[from..=hay.len() - needle.len()])?;
        if &hay[i..i + needle.len()] == needle {
            return Some(i);
        }
        from = i + 1;
    }
    None
}

fn check_utf8(bytes: &[u8], pos: TextPos) -> XmlResult<&str> {
    std::str::from_utf8(bytes).map_err(|_| XmlError::new(XmlErrorKind::InvalidUtf8, pos))
}

/// Re-borrow bytes that were already UTF-8 validated this call (tokens are
/// built after `consume`, which ends the first borrow). Skipping the second
/// validation saves a full pass over every token's bytes.
#[inline]
fn revalidated(bytes: &[u8]) -> &str {
    debug_assert!(std::str::from_utf8(bytes).is_ok());
    // SAFETY: every call site validated exactly these bytes via
    // `check_utf8`/`from_utf8` earlier in the same function.
    unsafe { std::str::from_utf8_unchecked(bytes) }
}

/// Byte classes for the ASCII fast path of [`validate_name`]: bit 0 = valid
/// name start, bit 1 = valid name continuation. Non-ASCII bytes take the
/// slow (char-based) path.
static NAME_CLASS: [u8; 128] = {
    let mut t = [0u8; 128];
    let mut b = 0usize;
    while b < 128 {
        let c = b as u8;
        let alpha = c.is_ascii_alphabetic();
        if alpha || c == b'_' || c == b':' {
            t[b] |= 0b01;
        }
        if alpha || c.is_ascii_digit() || matches!(c, b'_' | b':' | b'-' | b'.') {
            t[b] |= 0b10;
        }
        b += 1;
    }
    t
};

/// Validate an XML name (element or attribute). Namespace colons allowed.
/// Runs per tag: ASCII names (the overwhelmingly common case) validate via
/// one table lookup per byte, no char decoding.
fn validate_name(name: &str, pos: TextPos) -> XmlResult<()> {
    let bytes = name.as_bytes();
    if bytes.is_empty() {
        return Err(XmlError::syntax("empty name", pos));
    }
    if name.is_ascii() {
        let first_ok = NAME_CLASS[bytes[0] as usize] & 0b01 != 0;
        if first_ok
            && bytes[1..]
                .iter()
                .all(|&b| NAME_CLASS[b as usize] & 0b10 != 0)
        {
            return Ok(());
        }
        return Err(XmlError::syntax(format!("invalid name `{name}`"), pos));
    }
    let mut chars = name.chars();
    let ok_first = |c: char| c.is_alphabetic() || c == '_' || c == ':' || !c.is_ascii();
    let ok_rest =
        |c: char| c.is_alphanumeric() || matches!(c, '_' | ':' | '-' | '.') || !c.is_ascii();
    match chars.next() {
        None => return Err(XmlError::syntax("empty name", pos)),
        Some(c) if !ok_first(c) => {
            return Err(XmlError::syntax(format!("invalid name `{name}`"), pos))
        }
        Some(_) => {}
    }
    if chars.all(ok_rest) {
        Ok(())
    } else {
        Err(XmlError::syntax(format!("invalid name `{name}`"), pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XmlErrorKind as K;

    /// Collect all tokens as owned debug strings for simple assertions.
    fn toks(input: &str) -> Vec<String> {
        let mut t = Tokenizer::from_str(input);
        let mut out = Vec::new();
        loop {
            match t.next_token() {
                Ok(Some(tok)) => out.push(format!("{tok:?}")),
                Ok(None) => break,
                Err(e) => {
                    out.push(format!("ERR {e}"));
                    break;
                }
            }
        }
        out
    }

    fn kinds(input: &str) -> Vec<&'static str> {
        let mut t = Tokenizer::from_str(input);
        let mut out = Vec::new();
        while let Some(tok) = t.next_token().unwrap() {
            out.push(match tok {
                Token::StartTag(_) => "start",
                Token::EndTag { .. } => "end",
                Token::Text(_) => "text",
                Token::Comment(_) => "comment",
                Token::ProcessingInstruction { .. } => "pi",
                Token::Doctype(_) => "doctype",
            });
        }
        out
    }

    #[test]
    fn simple_document() {
        assert_eq!(
            kinds("<a><b>hi</b></a>"),
            ["start", "start", "text", "end", "end"]
        );
    }

    #[test]
    fn self_closing_tag() {
        let mut t = Tokenizer::from_str("<a><b/></a>");
        t.next_token().unwrap();
        match t.next_token().unwrap().unwrap() {
            Token::StartTag(s) => {
                assert_eq!(s.name, "b");
                assert!(s.self_closing);
            }
            other => panic!("expected start tag, got {other:?}"),
        }
    }

    #[test]
    fn attributes_parse_with_both_quotes() {
        let mut t = Tokenizer::from_str(r#"<a x="1" y='two' z = "3"/>"#);
        match t.next_token().unwrap().unwrap() {
            Token::StartTag(s) => {
                assert_eq!(s.attrs.len(), 3);
                assert_eq!(s.attrs.get(0).unwrap().name, "x");
                assert_eq!(s.attrs.get(0).unwrap().value, "1");
                assert_eq!(s.attrs.get(1).unwrap().value, "two");
                assert_eq!(s.attrs.get(2).unwrap().value, "3");
                assert_eq!(s.attrs.value_of("y"), Some("two"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn attribute_entities_resolved() {
        let mut t = Tokenizer::from_str(r#"<a x="a&amp;b&lt;c"/>"#);
        match t.next_token().unwrap().unwrap() {
            Token::StartTag(s) => assert_eq!(s.attrs.get(0).unwrap().value, "a&b<c"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn gt_inside_attribute_value() {
        let mut t = Tokenizer::from_str(r#"<a x="1>2">t</a>"#);
        match t.next_token().unwrap().unwrap() {
            Token::StartTag(s) => assert_eq!(s.attrs.get(0).unwrap().value, "1>2"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn text_entities_resolved() {
        let mut t = Tokenizer::from_str("<a>x &amp; y &#65;</a>");
        t.next_token().unwrap();
        match t.next_token().unwrap().unwrap() {
            Token::Text(s) => assert_eq!(s, "x & y A"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn comment_token() {
        let mut t = Tokenizer::from_str("<a><!-- hi -- there --></a>");
        t.next_token().unwrap();
        match t.next_token().unwrap().unwrap() {
            Token::Comment(c) => assert_eq!(c, " hi -- there "),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cdata_is_verbatim_text() {
        let mut t = Tokenizer::from_str("<a><![CDATA[x < y & z]]></a>");
        t.next_token().unwrap();
        match t.next_token().unwrap().unwrap() {
            Token::Text(s) => assert_eq!(s, "x < y & z"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn xml_declaration_is_pi() {
        let mut t = Tokenizer::from_str("<?xml version=\"1.0\"?><a/>");
        match t.next_token().unwrap().unwrap() {
            Token::ProcessingInstruction { target, data } => {
                assert_eq!(target, "xml");
                assert_eq!(data, "version=\"1.0\"");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn doctype_with_internal_subset() {
        let mut t =
            Tokenizer::from_str("<!DOCTYPE site [ <!ELEMENT a (b)> <!ENTITY x \"y\"> ]><site/>");
        match t.next_token().unwrap().unwrap() {
            Token::Doctype(d) => assert!(d.contains("ELEMENT")),
            other => panic!("{other:?}"),
        }
        match t.next_token().unwrap().unwrap() {
            Token::StartTag(s) => assert_eq!(s.name, "site"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mismatched_tags_detected() {
        let mut t = Tokenizer::from_str("<a><b></a></b>");
        t.next_token().unwrap();
        t.next_token().unwrap();
        let err = loop {
            match t.next_token() {
                Err(e) => break e,
                Ok(Some(_)) => {}
                Ok(None) => panic!("expected error"),
            }
        };
        assert!(matches!(err.kind, K::MismatchedTag { .. }));
    }

    #[test]
    fn unclosed_elements_detected_at_eof() {
        let mut t = Tokenizer::from_str("<a><b>");
        t.next_token().unwrap();
        t.next_token().unwrap();
        let err = t.next_token().unwrap_err();
        match err.kind {
            K::UnclosedElements(names) => assert_eq!(names, ["a", "b"]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stray_end_tag_detected() {
        let mut t = Tokenizer::from_str("</a>");
        let err = t.next_token().unwrap_err();
        assert!(matches!(err.kind, K::UnexpectedEndTag(_)));
    }

    #[test]
    fn second_root_rejected() {
        let mut t = Tokenizer::from_str("<a/><b/>");
        t.next_token().unwrap();
        let err = loop {
            match t.next_token() {
                Err(e) => break e,
                Ok(Some(_)) => {}
                Ok(None) => panic!("expected error"),
            }
        };
        assert!(matches!(err.kind, K::TrailingContent));
    }

    #[test]
    fn fragments_allowed_when_opted_in() {
        let opts = TokenizerOptions {
            allow_fragments: true,
            ..Default::default()
        };
        let mut t = Tokenizer::with_options(std::io::Cursor::new(b"<a/>text<b/>".as_slice()), opts);
        let mut n = 0;
        while t.next_token().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 3);
    }

    #[test]
    fn text_outside_root_rejected() {
        let mut t = Tokenizer::from_str("hello<a/>");
        let err = t.next_token().unwrap_err();
        assert!(matches!(err.kind, K::TextOutsideRoot));
    }

    #[test]
    fn whitespace_outside_root_ok() {
        assert_eq!(kinds("  <a/>\n"), ["text", "start", "text"]);
    }

    #[test]
    fn bad_entity_in_text() {
        let mut t = Tokenizer::from_str("<a>&nope;</a>");
        t.next_token().unwrap();
        let err = t.next_token().unwrap_err();
        assert!(matches!(err.kind, K::BadEntity(_)));
    }

    #[test]
    fn invalid_name_rejected() {
        let out = toks("<1abc/>");
        assert!(out[0].starts_with("ERR"), "{out:?}");
    }

    #[test]
    fn empty_document_is_error() {
        let mut t = Tokenizer::from_str("");
        let err = t.next_token().unwrap_err();
        assert!(matches!(err.kind, K::UnexpectedEof { .. }));
    }

    #[test]
    fn truncated_tag_is_error() {
        let mut t = Tokenizer::from_str("<a><b attr=\"x");
        t.next_token().unwrap();
        let err = t.next_token().unwrap_err();
        assert!(matches!(err.kind, K::UnexpectedEof { .. }));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let mut t = Tokenizer::from_str(r#"<a x="1" x="2"/>"#);
        let err = t.next_token().unwrap_err();
        assert!(matches!(err.kind, K::Syntax(_)));
    }

    #[test]
    fn unquoted_attribute_rejected() {
        let mut t = Tokenizer::from_str("<a x=1/>");
        assert!(t.next_token().is_err());
    }

    #[test]
    fn position_tracking_across_lines() {
        let mut t = Tokenizer::from_str("<a>\n  <b/>\n</a>");
        t.next_token().unwrap(); // <a>
        t.next_token().unwrap(); // text
        assert_eq!(t.position().line, 2);
        assert_eq!(t.position().column, 3);
    }

    #[test]
    fn streaming_across_tiny_reads() {
        /// A reader that returns one byte at a time, exercising every refill
        /// path in the tokenizer.
        struct OneByte<'a>(&'a [u8]);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.0.is_empty() {
                    return Ok(0);
                }
                buf[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let doc = "<bib><book id=\"b&amp;1\"><title>T</title><!--c--></book></bib>";
        let mut t = Tokenizer::new(OneByte(doc.as_bytes()));
        let mut n = 0;
        while t.next_token().unwrap().is_some() {
            n += 1;
        }
        // bib, book, title, "T", /title, comment, /book, /bib
        assert_eq!(n, 8);
    }

    #[test]
    fn validate_to_end_counts_tokens() {
        let mut t = Tokenizer::from_str("<a><b/><c/></a>");
        assert_eq!(t.validate_to_end().unwrap(), 4);
    }

    #[test]
    fn depth_reflects_open_elements() {
        let mut t = Tokenizer::from_str("<a><b><c/></b></a>");
        t.next_token().unwrap();
        t.next_token().unwrap();
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn large_text_spanning_chunks() {
        let big = "x".repeat(300_000);
        let doc = format!("<a>{big}</a>");
        let mut t = Tokenizer::from_str(&doc);
        t.next_token().unwrap();
        match t.next_token().unwrap().unwrap() {
            Token::Text(s) => assert_eq!(s.len(), 300_000),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn memchr1_matches_naive_search() {
        let hay: Vec<u8> = (0..257u16).map(|i| (i % 251) as u8).collect();
        for needle in [0u8, 1, 7, 250, 251, 255] {
            assert_eq!(
                memchr1(needle, &hay),
                hay.iter().position(|&b| b == needle),
                "needle {needle}"
            );
        }
        // Every offset/alignment of a small window.
        let hay = b"abcdefghijklmnopqrstuvwxyz<1234567890";
        for start in 0..hay.len() {
            assert_eq!(
                memchr1(b'<', &hay[start..]),
                hay[start..].iter().position(|&b| b == b'<')
            );
        }
        assert_eq!(memchr1(b'x', b""), None);
        // Borrow false-positive construction: '=' (0x3D == '<' ^ 0x01)
        // directly before the true match inside one word can flip its own
        // lane in the zero detector; the match extraction must still report
        // the '<'. (This is the case that breaks if the first-match lane is
        // read from the wrong end; see `load_le`.)
        let hay = b"aaaaaa=<bbbbbbbb";
        for start in 0..8 {
            assert_eq!(
                memchr1(b'<', &hay[start..]),
                hay[start..].iter().position(|&b| b == b'<'),
                "start {start}"
            );
        }
        assert_eq!(memchr_tag_delim(b"aaaaaa=<bbbbbbbb"), Some(7));
        assert_eq!(memchr_tag_delim(b"aaaaaa!\"bbbbbbbb"), Some(7));
    }

    #[test]
    fn crlf_normalized_in_text() {
        let mut t = Tokenizer::from_str("<a>line1\r\nline2\rline3\nline4</a>");
        t.next_token().unwrap();
        match t.next_token().unwrap().unwrap() {
            Token::Text(s) => assert_eq!(s, "line1\nline2\nline3\nline4"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn crlf_normalized_in_attributes() {
        // §2.11 (CRLF/CR → LF) composed with §3.3.3 (literal whitespace →
        // space, for CDATA-type attributes): conformant parsers report
        // spaces here.
        let mut t = Tokenizer::from_str("<a x=\"v1\r\nv2\rv3\" y=\"a\nb\tc\"/>");
        match t.next_token().unwrap().unwrap() {
            Token::StartTag(s) => {
                assert_eq!(s.attrs.get(0).unwrap().value, "v1 v2 v3");
                assert_eq!(s.attrs.get(1).unwrap().value, "a b c");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn crlf_normalized_in_cdata() {
        let mut t = Tokenizer::from_str("<a><![CDATA[x\r\ny\rz]]></a>");
        t.next_token().unwrap();
        match t.next_token().unwrap().unwrap() {
            Token::Text(s) => assert_eq!(s, "x\ny\nz"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn character_reference_cr_survives_normalization() {
        // &#13; is a character reference, exempt from §2.11 normalization.
        let mut t = Tokenizer::from_str("<a>x&#13;y</a>");
        t.next_token().unwrap();
        match t.next_token().unwrap().unwrap() {
            Token::Text(s) => assert_eq!(s, "x\ry"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn crlf_between_markup_normalized() {
        assert_eq!(
            kinds("<a>\r\n<b/>\r\n</a>"),
            ["start", "text", "start", "text", "end"]
        );
        let mut t = Tokenizer::from_str("<a>\r\n<b/></a>");
        t.next_token().unwrap();
        match t.next_token().unwrap().unwrap() {
            Token::Text(s) => assert_eq!(s, "\n"),
            other => panic!("{other:?}"),
        }
    }
}
