//! Borrowed token types produced by the [`crate::Tokenizer`].

/// One attribute of a start tag. The value has entities resolved and line
/// endings normalized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attr<'a> {
    /// Attribute name as written (no namespace processing).
    pub name: &'a str,
    /// Attribute value with entities resolved; borrowed from the raw tag
    /// when no rewriting occurred, from the tokenizer's value arena
    /// otherwise.
    pub value: &'a str,
}

/// Byte spans of one parsed attribute inside a start tag, relative to the
/// tag body (tokenizer scratch; reused across tokens).
#[derive(Debug, Clone, Copy)]
pub(crate) struct AttrSpan {
    /// Name range in the tag body.
    pub name: (u32, u32),
    /// Raw value range in the tag body.
    pub value: (u32, u32),
    /// Range in the tokenizer's value arena when the raw value needed
    /// entity resolution or line-ending normalization.
    pub owned: Option<(u32, u32)>,
}

/// The attributes of a start tag: a zero-copy view into the tokenizer's
/// reusable scratch buffers (no allocation per token).
#[derive(Clone, Copy)]
pub struct Attrs<'a> {
    pub(crate) spans: &'a [AttrSpan],
    /// The start tag's body (between `<` and `>`/`/>`).
    pub(crate) body: &'a str,
    /// Arena holding rewritten (unescaped/normalized) values.
    pub(crate) arena: &'a str,
}

impl<'a> Attrs<'a> {
    /// An empty attribute list (used for synthesized tags in tests).
    pub const EMPTY: Attrs<'static> = Attrs {
        spans: &[],
        body: "",
        arena: "",
    };

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when the tag has no attributes.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The `i`-th attribute, in document order.
    pub fn get(&self, i: usize) -> Option<Attr<'a>> {
        self.spans.get(i).map(|s| self.materialize(s))
    }

    /// Iterate the attributes in document order.
    pub fn iter(&self) -> impl Iterator<Item = Attr<'a>> + '_ {
        self.spans.iter().map(|s| self.materialize(s))
    }

    /// Value of the attribute named `name`, if present.
    pub fn value_of(&self, name: &str) -> Option<&'a str> {
        self.iter().find(|a| a.name == name).map(|a| a.value)
    }

    fn materialize(&self, s: &AttrSpan) -> Attr<'a> {
        Attr {
            name: &self.body[s.name.0 as usize..s.name.1 as usize],
            value: match s.owned {
                Some((lo, hi)) => &self.arena[lo as usize..hi as usize],
                None => &self.body[s.value.0 as usize..s.value.1 as usize],
            },
        }
    }
}

impl std::fmt::Debug for Attrs<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl PartialEq for Attrs<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for Attrs<'_> {}

/// A start tag: name, attributes, and whether it was self-closing (`<a/>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartTag<'a> {
    /// Element name.
    pub name: &'a str,
    /// Attributes in document order.
    pub attrs: Attrs<'a>,
    /// `true` for `<a/>`; the tokenizer does **not** synthesize a separate
    /// end token, consumers handle the flag.
    pub self_closing: bool,
}

/// One XML token. Borrowed views into the tokenizer's internal buffer;
/// valid until the next call to `next_token`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token<'a> {
    /// `<name attr="v">` or `<name/>`.
    StartTag(StartTag<'a>),
    /// `</name>`.
    EndTag {
        /// Element name.
        name: &'a str,
    },
    /// Character data with entities resolved and line endings normalized
    /// (XML 1.0 §2.11). CDATA sections also surface as `Text` (verbatim
    /// except for line-ending normalization). Consecutive runs are *not*
    /// merged across entity or CDATA boundaries; consumers that need merged
    /// text concatenate.
    Text(&'a str),
    /// `<!-- ... -->` (content between the delimiters).
    Comment(&'a str),
    /// `<?target data?>`. The XML declaration `<?xml ...?>` appears here too.
    ProcessingInstruction {
        /// PI target (first name).
        target: &'a str,
        /// Everything between the target and `?>`, trimmed of leading space.
        data: &'a str,
    },
    /// `<!DOCTYPE ...>` content, kept verbatim and otherwise ignored.
    Doctype(&'a str),
}

impl Token<'_> {
    /// True for tokens that represent document structure the GCX engine
    /// cares about (tags and text); comments/PIs/doctype are "noise".
    pub fn is_structural(&self) -> bool {
        matches!(
            self,
            Token::StartTag(_) | Token::EndTag { .. } | Token::Text(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_classification() {
        assert!(Token::Text("x").is_structural());
        assert!(Token::EndTag { name: "a" }.is_structural());
        assert!(!Token::Comment("c").is_structural());
        assert!(!Token::Doctype("d").is_structural());
    }

    #[test]
    fn empty_attrs_view() {
        assert_eq!(Attrs::EMPTY.len(), 0);
        assert!(Attrs::EMPTY.is_empty());
        assert!(Attrs::EMPTY.get(0).is_none());
        assert_eq!(Attrs::EMPTY.value_of("x"), None);
    }
}
