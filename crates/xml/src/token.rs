//! Borrowed token types produced by the [`crate::Tokenizer`].

use std::borrow::Cow;

/// One attribute of a start tag. The value has entities already resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attr<'a> {
    /// Attribute name as written (no namespace processing).
    pub name: &'a str,
    /// Attribute value with entities resolved; borrowed when no entity
    /// occurred in the source.
    pub value: Cow<'a, str>,
}

/// A start tag: name, attributes, and whether it was self-closing (`<a/>`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StartTag<'a> {
    /// Element name.
    pub name: &'a str,
    /// Attributes in document order.
    pub attrs: Vec<Attr<'a>>,
    /// `true` for `<a/>`; the tokenizer does **not** synthesize a separate
    /// end token, consumers handle the flag.
    pub self_closing: bool,
}

/// One XML token. Borrowed views into the tokenizer's internal buffer;
/// valid until the next call to `next_token`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token<'a> {
    /// `<name attr="v">` or `<name/>`.
    StartTag(StartTag<'a>),
    /// `</name>`.
    EndTag {
        /// Element name.
        name: &'a str,
    },
    /// Character data with entities resolved. CDATA sections also surface as
    /// `Text` (verbatim). Consecutive runs are *not* merged across entity or
    /// CDATA boundaries; consumers that need merged text concatenate.
    Text(Cow<'a, str>),
    /// `<!-- ... -->` (content between the delimiters).
    Comment(&'a str),
    /// `<?target data?>`. The XML declaration `<?xml ...?>` appears here too.
    ProcessingInstruction {
        /// PI target (first name).
        target: &'a str,
        /// Everything between the target and `?>`, trimmed of leading space.
        data: &'a str,
    },
    /// `<!DOCTYPE ...>` content, kept verbatim and otherwise ignored.
    Doctype(&'a str),
}

impl Token<'_> {
    /// True for tokens that represent document structure the GCX engine
    /// cares about (tags and text); comments/PIs/doctype are "noise".
    pub fn is_structural(&self) -> bool {
        matches!(
            self,
            Token::StartTag(_) | Token::EndTag { .. } | Token::Text(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_classification() {
        assert!(Token::Text(Cow::Borrowed("x")).is_structural());
        assert!(Token::EndTag { name: "a" }.is_structural());
        assert!(!Token::Comment("c").is_structural());
        assert!(!Token::Doctype("d").is_structural());
    }
}
