#![deny(unsafe_op_in_unsafe_fn)]
//! # gcx-xml — streaming XML substrate for the GCX engine
//!
//! This crate provides everything the GCX streaming XQuery engine needs to
//! consume and produce XML without any external dependencies:
//!
//! * [`PushTokenizer`]: the sans-IO tokenizer core — caller-owned chunks
//!   in, borrowed [`Token`]s out (start tags with attributes, end tags,
//!   text, comments, CDATA, processing instructions), with byte-exact
//!   source positions, entity resolution and optional well-formedness
//!   enforcement. Suspends at any byte boundary, carrying partial-token
//!   spillover internally.
//! * [`Tokenizer`]: the pull adapter over that core for any
//!   [`std::io::Read`] source.
//! * [`XmlWriter`]: a streaming serializer with automatic escaping and
//!   optional pretty-printing, used by the engine to emit query results as
//!   soon as they are available.
//! * [`SymbolTable`]: an interner mapping XML names to dense [`Symbol`] ids so
//!   the rest of the engine compares names by `u32` equality.
//! * [`escape`]: the escaping/unescaping primitives shared by both sides.
//!
//! The tokenizer is the "input stream" of the GCX architecture (Figure 2 of
//! the paper); the writer is its output side. Both are deliberately
//! allocation-light: the tokenizer lends slices of its internal buffer and
//! only allocates when entity unescaping actually rewrites text.
//!
//! ```
//! use gcx_xml::{Tokenizer, Token};
//! let mut t = Tokenizer::from_str("<bib><book id='1'>x &amp; y</book></bib>");
//! let mut tags = Vec::new();
//! while let Some(tok) = t.next_token().unwrap() {
//!     if let Token::StartTag(s) = tok { tags.push(s.name.to_string()); }
//! }
//! assert_eq!(tags, ["bib", "book"]);
//! ```

mod doctype;
mod error;
pub mod escape;
mod pos;
pub mod push;
pub mod scan;
mod sym;
mod token;
mod tokenizer;
mod writer;

pub use doctype::{DoctypeError, DoctypeView};
pub use error::{XmlError, XmlErrorKind, XmlResult};
pub use pos::TextPos;
pub use push::{PushTokenizer, TokenStep};
pub use scan::{scan_boundaries, Boundary, ScanError, ScanEvent, ScanOutline};
pub use sym::{FxBuildHasher, FxHasher, Symbol, SymbolTable};
pub use token::{Attr, Attrs, StartTag, Token};
pub use tokenizer::{Tokenizer, TokenizerOptions};
pub use writer::{WriterOptions, XmlWriter};
