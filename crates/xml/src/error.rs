//! Error types for XML tokenization and serialization.

use crate::pos::TextPos;
use std::fmt;

/// Convenience alias used throughout the crate.
pub type XmlResult<T> = Result<T, XmlError>;

/// What went wrong while reading or writing XML.
#[derive(Debug)]
pub enum XmlErrorKind {
    /// Underlying I/O failure from the source or sink.
    Io(std::io::Error),
    /// The input ended in the middle of a construct (tag, comment, ...).
    UnexpectedEof {
        /// Human description of the construct being parsed.
        context: &'static str,
    },
    /// A syntactic violation, e.g. `<1abc>` or a bare `&`.
    Syntax(String),
    /// `</b>` closed `<a>`: mismatched element nesting.
    MismatchedTag {
        /// Name of the element currently open.
        expected: String,
        /// Name found in the end tag.
        found: String,
    },
    /// An end tag with no matching open element.
    UnexpectedEndTag(String),
    /// End of input with elements still open.
    UnclosedElements(Vec<String>),
    /// More than one top-level element (or content after the root closed).
    TrailingContent,
    /// Non-whitespace character data outside the document element.
    TextOutsideRoot,
    /// Unknown or malformed entity reference such as `&foo;`.
    BadEntity(String),
    /// Input is not valid UTF-8.
    InvalidUtf8,
    /// The serializer was asked to do something inconsistent, e.g. closing
    /// an element that was never opened.
    WriterMisuse(String),
}

/// An XML error together with the position at which it was detected.
#[derive(Debug)]
pub struct XmlError {
    /// The failure category and payload.
    pub kind: XmlErrorKind,
    /// Where in the input the problem was found (position of the offending
    /// construct's first byte where possible).
    pub pos: TextPos,
}

impl XmlError {
    pub(crate) fn new(kind: XmlErrorKind, pos: TextPos) -> Self {
        XmlError { kind, pos }
    }

    pub(crate) fn syntax(msg: impl Into<String>, pos: TextPos) -> Self {
        XmlError::new(XmlErrorKind::Syntax(msg.into()), pos)
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            XmlErrorKind::Io(e) => write!(f, "{}: I/O error: {e}", self.pos),
            XmlErrorKind::UnexpectedEof { context } => {
                write!(
                    f,
                    "{}: unexpected end of input while reading {context}",
                    self.pos
                )
            }
            XmlErrorKind::Syntax(msg) => write!(f, "{}: {msg}", self.pos),
            XmlErrorKind::MismatchedTag { expected, found } => write!(
                f,
                "{}: mismatched end tag: expected </{expected}>, found </{found}>",
                self.pos
            ),
            XmlErrorKind::UnexpectedEndTag(name) => {
                write!(f, "{}: end tag </{name}> without open element", self.pos)
            }
            XmlErrorKind::UnclosedElements(names) => {
                write!(
                    f,
                    "{}: input ended with unclosed elements: {}",
                    self.pos,
                    names.join(", ")
                )
            }
            XmlErrorKind::TrailingContent => {
                write!(f, "{}: content after the document element", self.pos)
            }
            XmlErrorKind::TextOutsideRoot => {
                write!(
                    f,
                    "{}: character data outside the document element",
                    self.pos
                )
            }
            XmlErrorKind::BadEntity(e) => {
                write!(
                    f,
                    "{}: unknown or malformed entity reference &{e};",
                    self.pos
                )
            }
            XmlErrorKind::InvalidUtf8 => write!(f, "{}: input is not valid UTF-8", self.pos),
            XmlErrorKind::WriterMisuse(msg) => write!(f, "writer misuse: {msg}"),
        }
    }
}

impl std::error::Error for XmlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            XmlErrorKind::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for XmlError {
    fn from(e: std::io::Error) -> Self {
        XmlError::new(XmlErrorKind::Io(e), TextPos::START)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let mut pos = TextPos::START;
        pos.advance(b"ab\ncd");
        let e = XmlError::syntax("bad thing", pos);
        assert_eq!(e.to_string(), "2:3: bad thing");
    }

    #[test]
    fn mismatched_tag_message() {
        let e = XmlError::new(
            XmlErrorKind::MismatchedTag {
                expected: "a".into(),
                found: "b".into(),
            },
            TextPos::START,
        );
        assert!(e.to_string().contains("</a>"));
        assert!(e.to_string().contains("</b>"));
    }

    #[test]
    fn io_error_has_source() {
        use std::error::Error;
        let e: XmlError = std::io::Error::other("boom").into();
        assert!(e.source().is_some());
    }
}
