//! The sans-IO tokenizer core: caller-owned chunks in, tokens out.
//!
//! [`PushTokenizer`] is the engine's byte-level state machine. It performs
//! **no I/O**: the caller feeds it chunks of the document with
//! [`PushTokenizer::feed`] (or writes directly into [`PushTokenizer::space`]
//! and commits), drives it with [`PushTokenizer::step`], and reads each
//! completed token with [`PushTokenizer::token`]. When the window ends in
//! the middle of a token, `step` reports [`TokenStep::NeedMoreData`] and the
//! partial token stays buffered internally (the *spillover*, observable via
//! [`PushTokenizer::pending_bytes`]) until the next chunk arrives — the
//! tokenizer can be suspended at any byte boundary, including mid-tag,
//! mid-UTF-8 sequence or mid-CDATA.
//!
//! The pull-based [`crate::Tokenizer`] is a thin adapter that reads from an
//! [`std::io::Read`] source whenever this core asks for more data; the
//! streaming engine's [`EvalSession`](https://docs.rs/gcx-core) feeds it
//! network chunks as they arrive. Both observe the exact same token
//! sequence for the same bytes, however the bytes are split.
//!
//! ```
//! use gcx_xml::{PushTokenizer, Token, TokenStep};
//!
//! let mut t = PushTokenizer::new();
//! t.feed(b"<bib><book>x &a"); // ends mid-entity
//! let mut names = Vec::new();
//! loop {
//!     match t.step().unwrap() {
//!         TokenStep::Token => {
//!             if let Token::StartTag(s) = t.token() { names.push(s.name.to_string()); }
//!         }
//!         TokenStep::NeedMoreData => break,
//!         TokenStep::End => unreachable!(),
//!     }
//! }
//! t.feed(b"mp; y</book></bib>");
//! t.finish_input();
//! let mut text = String::new();
//! loop {
//!     match t.step().unwrap() {
//!         TokenStep::Token => {
//!             if let Token::Text(s) = t.token() { text.push_str(s); }
//!         }
//!         TokenStep::NeedMoreData => unreachable!("input is complete"),
//!         TokenStep::End => break,
//!     }
//! }
//! assert_eq!(names, ["bib", "book"]);
//! assert_eq!(text, "x & y");
//! ```
//!
//! ## Allocation discipline
//!
//! Same as the pull tokenizer it replaced: the steady-state token loop
//! performs no heap allocation. The window buffer is reused (consumed
//! prefixes are compacted on the next feed), open names live back-to-back
//! in one arena, attribute spans live in a reusable scratch vector, and
//! rewritten text/attribute values go into reusable arenas. A returned
//! token borrows these buffers and is valid until the next `feed`/`step`.

use crate::error::{XmlError, XmlErrorKind, XmlResult};
use crate::escape::{normalize_attr_into, normalize_newlines_into, normalize_unescape_into};
use crate::pos::TextPos;
use crate::token::{AttrSpan, Attrs, StartTag, Token};
use crate::tokenizer::TokenizerOptions;

/// Outcome of one [`PushTokenizer::step`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenStep {
    /// A complete token was recognized; read it with
    /// [`PushTokenizer::token`] before the next `feed` or `step`.
    Token,
    /// The window ends inside a token (or is empty): feed more bytes, or
    /// declare the end of input with [`PushTokenizer::finish_input`].
    NeedMoreData,
    /// Clean end of input: every byte was tokenized and (with checking
    /// enabled) the document is well-formed.
    End,
}

/// Descriptor of the last recognized token: spans into the window buffer
/// (still valid after `consume` — bytes move only on `feed` compaction)
/// or flags selecting a rewrite scratch.
#[derive(Debug, Clone, Copy)]
enum Pending {
    None,
    /// Character data. `scratch` selects the rewrite buffer (entities or
    /// line endings were normalized) over the raw window span.
    Text {
        scratch: bool,
        start: usize,
        len: usize,
    },
    Comment {
        start: usize,
        len: usize,
    },
    Doctype {
        start: usize,
        len: usize,
    },
    Pi {
        start: usize,
        len: usize,
        target_len: usize,
        data_off: usize,
    },
    EndTag {
        start: usize,
        len: usize,
    },
    /// Start tag body (between `<` and `>`/`/>`); attribute spans live in
    /// the reusable scratch, relative to this body span.
    StartTag {
        start: usize,
        len: usize,
        name_len: usize,
        self_closing: bool,
    },
}

/// What kind of markup construct starts at the current `<`.
enum MarkupKind {
    Comment,
    CData,
    Doctype,
    Pi,
    EndTag,
    StartTag,
}

/// Resumable scan state for the current partial token: where the last
/// failed terminator search left off (plus any mid-scan state), so that a
/// re-step after more data arrives does not rescan bytes already searched.
/// Without this, a token split across many small chunks would cost
/// O(len²) — the pull tokenizer's refill loops carried the same positions
/// implicitly. Offsets are relative to the window start, which survives
/// compaction (the window is rebased as one block). Cleared whenever a
/// token completes; a retry always resumes the *same* scan because
/// nothing was consumed and markup classification is deterministic over
/// the unchanged prefix.
#[derive(Debug, Clone, Copy)]
enum ScanHint {
    /// Generic terminator search ([`PushTokenizer::find`]) may resume at
    /// this relative offset.
    Find { from: usize },
    /// Start-tag scan: position + in-quote state.
    Tag { i: usize, quote: Option<u8> },
    /// DOCTYPE scan: position + internal-subset bracket depth.
    Doctype { i: usize, depth: usize },
}

/// Sans-IO incremental XML tokenizer. See the [module docs](self) for the
/// protocol and an example.
pub struct PushTokenizer {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (start of the unread window).
    lo: usize,
    /// End of valid bytes in `buf`.
    hi: usize,
    /// Set by [`PushTokenizer::finish_input`]: no more bytes will arrive.
    eof: bool,
    pos: TextPos,
    opts: TokenizerOptions,
    /// Open element names (well-formedness only): start offsets into
    /// `stack_arena`, where names are stored back-to-back.
    stack: Vec<u32>,
    stack_arena: String,
    seen_root: bool,
    /// Scratch for rewritten (unescaped/normalized) text so we can lend it
    /// borrowed.
    text_scratch: String,
    /// Scratch for the current start tag's attribute spans.
    attr_spans: Vec<AttrSpan>,
    /// Arena for attribute values that needed rewriting.
    attr_arena: String,
    /// Set once EOF has been fully validated and reported.
    done: bool,
    pending: Pending,
    /// Resume point of the current partial token's terminator scan.
    hint: Option<ScanHint>,
    /// High watermark of the unread window (spillover carried across
    /// chunk boundaries plus in-flight chunk bytes).
    window_peak: usize,
}

impl Default for PushTokenizer {
    fn default() -> Self {
        PushTokenizer::new()
    }
}

impl PushTokenizer {
    /// Push tokenizer with default options (well-formedness checking on).
    pub fn new() -> PushTokenizer {
        PushTokenizer::with_options(TokenizerOptions::default())
    }

    /// Push tokenizer with explicit options.
    pub fn with_options(opts: TokenizerOptions) -> PushTokenizer {
        PushTokenizer {
            buf: Vec::new(),
            lo: 0,
            hi: 0,
            eof: false,
            pos: TextPos::START,
            opts,
            stack: Vec::new(),
            stack_arena: String::new(),
            seen_root: false,
            text_scratch: String::new(),
            attr_spans: Vec::new(),
            attr_arena: String::new(),
            done: false,
            pending: Pending::None,
            hint: None,
            window_peak: 0,
        }
    }

    /// Current position: the first byte of the *next* token to be returned.
    pub fn position(&self) -> TextPos {
        self.pos
    }

    /// Depth of currently open elements (well-formedness checking only).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Unconsumed bytes currently buffered — after a
    /// [`TokenStep::NeedMoreData`], the partial-token spillover carried
    /// across the feed boundary.
    pub fn pending_bytes(&self) -> usize {
        self.avail()
    }

    /// True once [`PushTokenizer::finish_input`] has been called.
    pub fn input_finished(&self) -> bool {
        self.eof
    }

    /// High watermark of the unread window over the tokenizer's lifetime —
    /// the sans-IO core's true input-side memory bound (partial-token
    /// spillover plus the largest not-yet-tokenized chunk tail).
    pub fn window_peak(&self) -> u64 {
        self.window_peak as u64
    }

    // ---- feeding ----------------------------------------------------------

    /// Append a caller-owned chunk to the window. Invalidates any token
    /// not yet read with [`PushTokenizer::token`].
    pub fn feed(&mut self, chunk: &[u8]) {
        let gap = self.space(chunk.len().max(1));
        gap[..chunk.len()].copy_from_slice(chunk);
        self.commit(chunk.len());
    }

    /// Borrow at least `min` writable bytes after the window (for reading
    /// from a source without an intermediate copy); follow with
    /// [`PushTokenizer::commit`]. Invalidates any unread token.
    pub fn space(&mut self, min: usize) -> &mut [u8] {
        self.pending = Pending::None;
        // Compact the consumed prefix before growing: the window only ever
        // holds the current partial token plus unread lookahead.
        if self.lo > 0 {
            self.buf.copy_within(self.lo..self.hi, 0);
            self.hi -= self.lo;
            self.lo = 0;
        }
        if self.buf.len() - self.hi < min {
            self.buf.resize(self.hi + min, 0);
        }
        &mut self.buf[self.hi..]
    }

    /// Declare `n` bytes of [`PushTokenizer::space`] filled.
    pub fn commit(&mut self, n: usize) {
        debug_assert!(self.hi + n <= self.buf.len());
        self.hi += n;
        self.window_peak = self.window_peak.max(self.hi - self.lo);
    }

    /// Declare the end of input: no more bytes will be fed. The next
    /// [`PushTokenizer::step`] calls tokenize the remaining window and
    /// finish with [`TokenStep::End`] (or a well-formedness error).
    pub fn finish_input(&mut self) {
        self.eof = true;
    }

    // ---- window management -------------------------------------------------

    /// Number of unread bytes currently buffered.
    fn avail(&self) -> usize {
        self.hi - self.lo
    }

    /// At least `n` unread bytes? `Some(false)` means end-of-input makes
    /// that impossible; `None` means more data could still arrive.
    fn ensure(&self, n: usize) -> Option<bool> {
        if self.avail() >= n {
            Some(true)
        } else if self.eof {
            Some(false)
        } else {
            None
        }
    }

    /// Find `needle` in the unread window at relative offset >= `from`,
    /// resuming a previously failed scan of the same partial token.
    /// `Some(None)` = provably absent (end of input); `None` = need data.
    fn find(&mut self, from: usize, needle: &[u8]) -> Option<Option<usize>> {
        let from = match self.hint {
            Some(ScanHint::Find { from: resumed }) => from.max(resumed),
            _ => from,
        };
        let window = &self.buf[self.lo..self.hi];
        if window.len() >= needle.len() && from <= window.len() - needle.len() {
            if let Some(i) = find_sub(&window[from..], needle) {
                self.hint = None;
                return Some(Some(from + i));
            }
        }
        if self.eof {
            self.hint = None;
            Some(None)
        } else {
            // Keep the last needle.len()-1 bytes re-searchable: the match
            // may straddle this feed boundary.
            self.hint = Some(ScanHint::Find {
                from: window.len().saturating_sub(needle.len() - 1).max(from),
            });
            None
        }
    }

    /// Consume `n` bytes, updating the position. Ends the current token:
    /// any scan-resume state belongs to it and is dropped.
    fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.avail());
        self.pos.advance(&self.buf[self.lo..self.lo + n]);
        self.lo += n;
        self.hint = None;
    }

    fn err_eof(&self, context: &'static str) -> XmlError {
        XmlError::new(XmlErrorKind::UnexpectedEof { context }, self.pos)
    }

    /// The open element names, outermost first (error reporting).
    fn open_names(&self) -> Vec<String> {
        self.stack
            .iter()
            .enumerate()
            .map(|(i, &start)| {
                let end = self
                    .stack
                    .get(i + 1)
                    .map(|&e| e as usize)
                    .unwrap_or(self.stack_arena.len());
                self.stack_arena[start as usize..end].to_string()
            })
            .collect()
    }

    // ---- stepping ----------------------------------------------------------

    /// Advance by one token. On [`TokenStep::Token`], read it with
    /// [`PushTokenizer::token`]; on [`TokenStep::NeedMoreData`] nothing was
    /// consumed — feed more bytes (or `finish_input`) and call again.
    pub fn step(&mut self) -> XmlResult<TokenStep> {
        self.pending = Pending::None;
        if self.done {
            return Ok(TokenStep::End);
        }
        if self.avail() == 0 {
            if !self.eof {
                return Ok(TokenStep::NeedMoreData);
            }
            // Clean EOF: validate well-formedness closure.
            self.done = true;
            if self.opts.check_well_formed {
                if !self.stack.is_empty() {
                    return Err(XmlError::new(
                        XmlErrorKind::UnclosedElements(self.open_names()),
                        self.pos,
                    ));
                }
                if !self.seen_root && !self.opts.allow_fragments {
                    return Err(self.err_eof("document element"));
                }
            }
            return Ok(TokenStep::End);
        }
        if self.buf[self.lo] == b'<' {
            self.step_markup()
        } else {
            self.step_text()
        }
    }

    /// The token recognized by the last [`TokenStep::Token`]. Borrows the
    /// internal buffers: read it before the next `feed`/`space`/`step`.
    ///
    /// # Panics
    ///
    /// If the last step did not produce a token.
    pub fn token(&self) -> Token<'_> {
        match self.pending {
            Pending::None => panic!("PushTokenizer::token() without a pending token"),
            Pending::Text { scratch: true, .. } => Token::Text(&self.text_scratch),
            Pending::Text {
                scratch: false,
                start,
                len,
            } => Token::Text(revalidated(&self.buf[start..start + len])),
            Pending::Comment { start, len } => {
                Token::Comment(revalidated(&self.buf[start..start + len]))
            }
            Pending::Doctype { start, len } => {
                Token::Doctype(revalidated(&self.buf[start..start + len]))
            }
            Pending::Pi {
                start,
                len,
                target_len,
                data_off,
            } => {
                let body = revalidated(&self.buf[start..start + len]);
                Token::ProcessingInstruction {
                    target: &body[..target_len],
                    data: &body[data_off..],
                }
            }
            Pending::EndTag { start, len } => Token::EndTag {
                name: revalidated(&self.buf[start..start + len]),
            },
            Pending::StartTag {
                start,
                len,
                name_len,
                self_closing,
            } => {
                let inner = revalidated(&self.buf[start..start + len]);
                Token::StartTag(StartTag {
                    name: &inner[..name_len],
                    attrs: Attrs {
                        spans: &self.attr_spans,
                        body: inner,
                        arena: &self.attr_arena,
                    },
                    self_closing,
                })
            }
        }
    }

    fn step_text(&mut self) -> XmlResult<TokenStep> {
        // Locate the end of the text run: the next '<' or end of input.
        // A run is one token however it was chunked, so the whole run must
        // be buffered before it is emitted (this is the common spillover).
        let end = match self.find(0, b"<") {
            None => return Ok(TokenStep::NeedMoreData),
            Some(None) => self.avail(),
            Some(Some(i)) => i,
        };
        let start_pos = self.pos;
        let raw = &self.buf[self.lo..self.lo + end];
        let raw = std::str::from_utf8(raw)
            .map_err(|_| XmlError::new(XmlErrorKind::InvalidUtf8, start_pos))?;
        // Outside the document element only whitespace is allowed.
        if self.opts.check_well_formed
            && !self.opts.allow_fragments
            && self.stack.is_empty()
            && !raw.bytes().all(|b| b.is_ascii_whitespace())
        {
            return Err(XmlError::new(XmlErrorKind::TextOutsideRoot, start_pos));
        }
        // Entity resolution and line-ending normalization share one rewrite
        // pass into the reusable scratch; clean runs are lent borrowed.
        let needs_rewrite = raw.bytes().any(|b| b == b'&' || b == b'\r');
        if needs_rewrite {
            self.text_scratch.clear();
            let raw_range = self.lo..self.lo + end; // defer slice re-borrow
            let raw2 = revalidated(&self.buf[raw_range]);
            if let Err(entity) = normalize_unescape_into(raw2, &mut self.text_scratch) {
                let entity = entity.to_string();
                return Err(XmlError::new(XmlErrorKind::BadEntity(entity), start_pos));
            }
        }
        self.pending = Pending::Text {
            scratch: needs_rewrite,
            start: self.lo,
            len: end,
        };
        self.consume(end);
        Ok(TokenStep::Token)
    }

    fn classify_markup(&self) -> XmlResult<Option<MarkupKind>> {
        // We have '<' at lo. Peek a handful of bytes to classify.
        match self.ensure(2) {
            None => return Ok(None),
            Some(false) => return Err(self.err_eof("markup")),
            Some(true) => {}
        }
        Ok(Some(match self.buf[self.lo + 1] {
            b'/' => MarkupKind::EndTag,
            b'?' => MarkupKind::Pi,
            b'!' => {
                // <!-- | <![CDATA[ | <!DOCTYPE — the discriminating prefix
                // is up to 9 bytes, so wait for them (or end of input).
                if self.ensure(4) == Some(true) && &self.buf[self.lo + 2..self.lo + 4] == b"--" {
                    MarkupKind::Comment
                } else if self.ensure(9) == Some(true)
                    && &self.buf[self.lo + 2..self.lo + 9] == b"[CDATA["
                {
                    MarkupKind::CData
                } else if self.eof || self.avail() >= 9 {
                    MarkupKind::Doctype
                } else {
                    return Ok(None);
                }
            }
            _ => MarkupKind::StartTag,
        }))
    }

    fn step_markup(&mut self) -> XmlResult<TokenStep> {
        let start_pos = self.pos;
        let Some(kind) = self.classify_markup()? else {
            return Ok(TokenStep::NeedMoreData);
        };
        match kind {
            MarkupKind::Comment => {
                let Some(found) = self.find(4, b"-->") else {
                    return Ok(TokenStep::NeedMoreData);
                };
                let end = found.ok_or_else(|| self.err_eof("comment"))?;
                let total = end + 3;
                check_utf8(&self.buf[self.lo + 4..self.lo + end], start_pos)?;
                self.pending = Pending::Comment {
                    start: self.lo + 4,
                    len: end - 4,
                };
                self.consume(total);
                Ok(TokenStep::Token)
            }
            MarkupKind::CData => {
                let Some(found) = self.find(9, b"]]>") else {
                    return Ok(TokenStep::NeedMoreData);
                };
                let end = found.ok_or_else(|| self.err_eof("CDATA section"))?;
                let total = end + 3;
                let raw = check_utf8(&self.buf[self.lo + 9..self.lo + end], start_pos)?;
                let needs_rewrite = raw.bytes().any(|b| b == b'\r');
                if self.opts.check_well_formed
                    && !self.opts.allow_fragments
                    && self.stack.is_empty()
                {
                    return Err(XmlError::new(XmlErrorKind::TextOutsideRoot, start_pos));
                }
                if needs_rewrite {
                    // §2.11 applies inside CDATA too (no entity processing).
                    self.text_scratch.clear();
                    let raw_range = self.lo + 9..self.lo + end;
                    let raw2 = revalidated(&self.buf[raw_range]);
                    normalize_newlines_into(raw2, &mut self.text_scratch);
                }
                self.pending = Pending::Text {
                    scratch: needs_rewrite,
                    start: self.lo + 9,
                    len: end - 9,
                };
                self.consume(total);
                Ok(TokenStep::Token)
            }
            MarkupKind::Doctype => {
                // Scan for '>' at zero square-bracket depth (internal subset).
                let Some(end) = self.find_doctype_end()? else {
                    return Ok(TokenStep::NeedMoreData);
                };
                let total = end + 1;
                check_utf8(&self.buf[self.lo + 2..self.lo + end], start_pos)?;
                self.pending = Pending::Doctype {
                    start: self.lo + 2,
                    len: end - 2,
                };
                self.consume(total);
                Ok(TokenStep::Token)
            }
            MarkupKind::Pi => {
                let Some(found) = self.find(2, b"?>") else {
                    return Ok(TokenStep::NeedMoreData);
                };
                let end = found.ok_or_else(|| self.err_eof("processing instruction"))?;
                let total = end + 2;
                let body = check_utf8(&self.buf[self.lo + 2..self.lo + end], start_pos)?;
                let target_len = body
                    .char_indices()
                    .find(|(_, c)| c.is_whitespace())
                    .map(|(i, _)| i)
                    .unwrap_or(body.len());
                if target_len == 0 {
                    return Err(XmlError::syntax(
                        "processing instruction without target",
                        start_pos,
                    ));
                }
                let data_off = body[target_len..]
                    .char_indices()
                    .find(|(_, c)| !c.is_whitespace())
                    .map(|(i, _)| target_len + i)
                    .unwrap_or(body.len());
                self.pending = Pending::Pi {
                    start: self.lo + 2,
                    len: end - 2,
                    target_len,
                    data_off,
                };
                self.consume(total);
                Ok(TokenStep::Token)
            }
            MarkupKind::EndTag => {
                let Some(found) = self.find(2, b">") else {
                    return Ok(TokenStep::NeedMoreData);
                };
                let end = found.ok_or_else(|| self.err_eof("end tag"))?;
                let total = end + 1;
                let body = check_utf8(&self.buf[self.lo + 2..self.lo + end], start_pos)?;
                let name = body.trim();
                validate_name(name, start_pos)?;
                if self.opts.check_well_formed {
                    match self.stack.pop() {
                        None => {
                            return Err(XmlError::new(
                                XmlErrorKind::UnexpectedEndTag(name.to_string()),
                                start_pos,
                            ))
                        }
                        Some(open_start) => {
                            let open = &self.stack_arena[open_start as usize..];
                            if open != name {
                                return Err(XmlError::new(
                                    XmlErrorKind::MismatchedTag {
                                        expected: open.to_string(),
                                        found: name.to_string(),
                                    },
                                    start_pos,
                                ));
                            }
                            self.stack_arena.truncate(open_start as usize);
                        }
                    }
                }
                let lead = body.len() - body.trim_start().len();
                self.pending = Pending::EndTag {
                    start: self.lo + 2 + lead,
                    len: name.len(),
                };
                self.consume(total);
                Ok(TokenStep::Token)
            }
            MarkupKind::StartTag => self.step_start_tag(start_pos),
        }
    }

    /// Find the '>' that ends a DOCTYPE, respecting `[ ... ]` internal
    /// subsets. `Ok(None)` = need more data (scan resumes where it left
    /// off on the next call).
    fn find_doctype_end(&mut self) -> XmlResult<Option<usize>> {
        let (start, mut depth) = match self.hint {
            Some(ScanHint::Doctype { i, depth }) => (i, depth),
            _ => (1, 0usize),
        };
        for i in start..self.avail() {
            match self.buf[self.lo + i] {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'>' if depth == 0 => {
                    self.hint = None;
                    return Ok(Some(i));
                }
                _ => {}
            }
        }
        if self.eof {
            self.hint = None;
            Err(self.err_eof("DOCTYPE declaration"))
        } else {
            self.hint = Some(ScanHint::Doctype {
                i: self.avail().max(1),
                depth,
            });
            Ok(None)
        }
    }

    /// Find the '>' ending a start tag, skipping quoted attribute values.
    /// Both the unquoted scan (for `" ' > <`) and the in-quote scan (for
    /// the close quote) run word-at-a-time. `Ok(None)` = need more data
    /// (position and in-quote state resume on the next call).
    fn find_tag_end(&mut self) -> XmlResult<Option<usize>> {
        let (mut i, mut quote) = match self.hint {
            Some(ScanHint::Tag { i, quote }) => (i, quote),
            _ => (1, None::<u8>),
        };
        loop {
            if i >= self.avail() {
                return if self.eof {
                    self.hint = None;
                    Err(self.err_eof("start tag"))
                } else {
                    self.hint = Some(ScanHint::Tag { i, quote });
                    Ok(None)
                };
            }
            match quote {
                Some(q) => {
                    // Inside a quoted value: skip straight to the close quote.
                    let hay = &self.buf[self.lo + i..self.hi];
                    match memchr1(q, hay) {
                        Some(p) => {
                            i += p + 1;
                            quote = None;
                        }
                        None => i = self.avail(),
                    }
                }
                None => match memchr_tag_delim(&self.buf[self.lo + i..self.hi]) {
                    Some(p) => {
                        i += p;
                        match self.buf[self.lo + i] {
                            b'"' | b'\'' => {
                                quote = Some(self.buf[self.lo + i]);
                                i += 1;
                            }
                            b'>' => {
                                self.hint = None;
                                return Ok(Some(i));
                            }
                            _ => {
                                debug_assert_eq!(self.buf[self.lo + i], b'<');
                                self.hint = None;
                                return Err(XmlError::syntax("'<' inside tag", self.pos));
                            }
                        }
                    }
                    None => i = self.avail(),
                },
            }
        }
    }

    fn step_start_tag(&mut self, start_pos: TextPos) -> XmlResult<TokenStep> {
        let Some(end) = self.find_tag_end()? else {
            return Ok(TokenStep::NeedMoreData);
        };
        let total = end + 1;
        let body = check_utf8(&self.buf[self.lo + 1..self.lo + end], start_pos)?;
        let self_closing = body.ends_with('/');
        let inner = if self_closing {
            &body[..body.len() - 1]
        } else {
            body
        };

        // Parse name.
        let inner_trim_start = inner.trim_start();
        if inner_trim_start.len() != inner.len() {
            return Err(XmlError::syntax(
                "whitespace before element name",
                start_pos,
            ));
        }
        let name_len = inner
            .char_indices()
            .find(|(_, c)| c.is_whitespace() || *c == '=')
            .map(|(i, _)| i)
            .unwrap_or(inner.len());
        let name = &inner[..name_len];
        validate_name(name, start_pos)?;

        // Parse attributes into the reusable span scratch. Spans are
        // relative to `inner`; rewritten values go into the reusable arena.
        self.attr_spans.clear();
        self.attr_arena.clear();
        let bytes = inner.as_bytes();
        let mut i = name_len;
        loop {
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i >= bytes.len() {
                break;
            }
            // attribute name
            let an_start = i;
            while i < bytes.len() && !bytes[i].is_ascii_whitespace() && bytes[i] != b'=' {
                i += 1;
            }
            let an_end = i;
            validate_name(&inner[an_start..an_end], start_pos)?;
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i >= bytes.len() || bytes[i] != b'=' {
                return Err(XmlError::syntax(
                    format!("attribute `{}` without value", &inner[an_start..an_end]),
                    start_pos,
                ));
            }
            i += 1; // '='
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i >= bytes.len() || (bytes[i] != b'"' && bytes[i] != b'\'') {
                return Err(XmlError::syntax(
                    "attribute value must be quoted",
                    start_pos,
                ));
            }
            let q = bytes[i];
            i += 1;
            let av_start = i;
            match memchr1(q, &bytes[i..]) {
                Some(p) => i += p,
                None => {
                    return Err(XmlError::syntax("unterminated attribute value", start_pos));
                }
            }
            let av_end = i;
            i += 1; // closing quote
            let raw_val = &inner[av_start..av_end];
            // Attribute values additionally get §3.3.3 normalization
            // (literal whitespace → space); see `normalize_attr_into`.
            let needs_rewrite = raw_val
                .bytes()
                .any(|b| matches!(b, b'&' | b'\r' | b'\n' | b'\t'));
            let owned = if needs_rewrite {
                let arena_start = self.attr_arena.len() as u32;
                if let Err(entity) = normalize_attr_into(raw_val, &mut self.attr_arena) {
                    return Err(XmlError::new(
                        XmlErrorKind::BadEntity(entity.to_string()),
                        start_pos,
                    ));
                }
                Some((arena_start, self.attr_arena.len() as u32))
            } else {
                None
            };
            self.attr_spans.push(AttrSpan {
                name: (an_start as u32, an_end as u32),
                value: (av_start as u32, av_end as u32),
                owned,
            });
        }

        // Duplicate attribute check (well-formedness constraint).
        if self.opts.check_well_formed {
            for a in 1..self.attr_spans.len() {
                for b in 0..a {
                    let (an, bn) = (self.attr_spans[a].name, self.attr_spans[b].name);
                    if inner[an.0 as usize..an.1 as usize] == inner[bn.0 as usize..bn.1 as usize] {
                        return Err(XmlError::syntax(
                            format!(
                                "duplicate attribute `{}`",
                                &inner[an.0 as usize..an.1 as usize]
                            ),
                            start_pos,
                        ));
                    }
                }
            }
        }

        // Well-formedness: root bookkeeping and open-element stack.
        if self.opts.check_well_formed {
            if self.stack.is_empty() {
                if self.seen_root && !self.opts.allow_fragments {
                    return Err(XmlError::new(XmlErrorKind::TrailingContent, start_pos));
                }
                self.seen_root = true;
            }
            if !self_closing {
                self.stack.push(self.stack_arena.len() as u32);
                self.stack_arena.push_str(name);
            }
        }

        self.pending = Pending::StartTag {
            start: self.lo + 1,
            len: end - 1 - usize::from(self_closing),
            name_len,
            self_closing,
        };
        self.consume(total);
        Ok(TokenStep::Token)
    }
}

// ---- accelerated scanners ----------------------------------------------------

const LANES: usize = std::mem::size_of::<usize>();
const LSB: usize = usize::from_ne_bytes([0x01; LANES]);
const MSB: usize = usize::from_ne_bytes([0x80; LANES]);

/// Load a word so its least significant byte is the FIRST byte in memory
/// (a byte swap on big-endian targets, free on little-endian). The
/// zero-byte detector `(x - LSB) & !x & MSB` can set false-positive bits
/// in lanes *above* the first true match (borrow propagation), so the
/// first-match lane must always be extracted from the low end with
/// `trailing_zeros` — which requires this memory ordering.
#[inline]
fn load_le(bytes: &[u8]) -> usize {
    usize::from_ne_bytes(bytes[..LANES].try_into().unwrap()).to_le()
}

/// SWAR single-byte search: scans one machine word at a time using the
/// classic zero-byte detector, with a scalar tail. This is the accelerated
/// scanner behind [`find_sub`]; the text/markup boundary scans of large
/// documents spend most of their time here.
#[inline]
pub(crate) fn memchr1(needle: u8, hay: &[u8]) -> Option<usize> {
    let broadcast = usize::from_ne_bytes([needle; LANES]);
    let mut i = 0;
    while i + LANES <= hay.len() {
        let x = load_le(&hay[i..]) ^ broadcast;
        let found = x.wrapping_sub(LSB) & !x & MSB;
        if found != 0 {
            return Some(i + (found.trailing_zeros() / 8) as usize);
        }
        i += LANES;
    }
    hay[i..].iter().position(|&b| b == needle).map(|p| i + p)
}

/// SWAR scan for the first start-tag delimiter: `"`, `'`, `>` or `<`.
/// Four zero-byte detectors per word still beat a byte loop by a wide
/// margin; start tags are delimiter-sparse.
#[inline]
pub(crate) fn memchr_tag_delim(hay: &[u8]) -> Option<usize> {
    #[inline]
    fn zero_detect(word: usize, broadcast: usize) -> usize {
        let x = word ^ broadcast;
        x.wrapping_sub(LSB) & !x & MSB
    }
    const DQ: usize = usize::from_ne_bytes([b'"'; LANES]);
    const SQ: usize = usize::from_ne_bytes([b'\''; LANES]);
    const GT: usize = usize::from_ne_bytes([b'>'; LANES]);
    const LT: usize = usize::from_ne_bytes([b'<'; LANES]);
    let mut i = 0;
    while i + LANES <= hay.len() {
        let word = load_le(&hay[i..]);
        let found = zero_detect(word, DQ)
            | zero_detect(word, SQ)
            | zero_detect(word, GT)
            | zero_detect(word, LT);
        if found != 0 {
            // Each detector is exact below its own first true match, so the
            // lowest set lane of the OR is the earliest true delimiter.
            return Some(i + (found.trailing_zeros() / 8) as usize);
        }
        i += LANES;
    }
    hay[i..]
        .iter()
        .position(|&b| matches!(b, b'"' | b'\'' | b'>' | b'<'))
        .map(|p| i + p)
}

/// Substring search: SWAR scan for the first needle byte, then verify the
/// remainder. Needles here are ≤ 3 bytes, so verification is trivial.
pub(crate) fn find_sub(hay: &[u8], needle: &[u8]) -> Option<usize> {
    debug_assert!(!needle.is_empty());
    if needle.len() == 1 {
        return memchr1(needle[0], hay);
    }
    let mut from = 0;
    while from + needle.len() <= hay.len() {
        let i = from + memchr1(needle[0], &hay[from..=hay.len() - needle.len()])?;
        if &hay[i..i + needle.len()] == needle {
            return Some(i);
        }
        from = i + 1;
    }
    None
}

fn check_utf8(bytes: &[u8], pos: TextPos) -> XmlResult<&str> {
    std::str::from_utf8(bytes).map_err(|_| XmlError::new(XmlErrorKind::InvalidUtf8, pos))
}

/// Re-borrow bytes that were already UTF-8 validated when the pending
/// token was recognized (tokens are read after `consume`, which ends the
/// first borrow). Skipping the second validation saves a full pass over
/// every token's bytes.
#[inline]
fn revalidated(bytes: &[u8]) -> &str {
    debug_assert!(std::str::from_utf8(bytes).is_ok());
    // SAFETY: every pending span was validated via `check_utf8`/`from_utf8`
    // in the step that recognized it, and the window is not mutated between
    // that step and the `token()` read (feeding resets the pending state).
    unsafe { std::str::from_utf8_unchecked(bytes) }
}

/// Byte classes for the ASCII fast path of [`validate_name`]: bit 0 = valid
/// name start, bit 1 = valid name continuation. Non-ASCII bytes take the
/// slow (char-based) path.
static NAME_CLASS: [u8; 128] = {
    let mut t = [0u8; 128];
    let mut b = 0usize;
    while b < 128 {
        let c = b as u8;
        let alpha = c.is_ascii_alphabetic();
        if alpha || c == b'_' || c == b':' {
            t[b] |= 0b01;
        }
        if alpha || c.is_ascii_digit() || matches!(c, b'_' | b':' | b'-' | b'.') {
            t[b] |= 0b10;
        }
        b += 1;
    }
    t
};

/// Validate an XML name (element or attribute). Namespace colons allowed.
/// Runs per tag: ASCII names (the overwhelmingly common case) validate via
/// one table lookup per byte, no char decoding.
fn validate_name(name: &str, pos: TextPos) -> XmlResult<()> {
    let bytes = name.as_bytes();
    if bytes.is_empty() {
        return Err(XmlError::syntax("empty name", pos));
    }
    if name.is_ascii() {
        let first_ok = NAME_CLASS[bytes[0] as usize] & 0b01 != 0;
        if first_ok
            && bytes[1..]
                .iter()
                .all(|&b| NAME_CLASS[b as usize] & 0b10 != 0)
        {
            return Ok(());
        }
        return Err(XmlError::syntax(format!("invalid name `{name}`"), pos));
    }
    let mut chars = name.chars();
    let ok_first = |c: char| c.is_alphabetic() || c == '_' || c == ':' || !c.is_ascii();
    let ok_rest =
        |c: char| c.is_alphanumeric() || matches!(c, '_' | ':' | '-' | '.') || !c.is_ascii();
    match chars.next() {
        None => return Err(XmlError::syntax("empty name", pos)),
        Some(c) if !ok_first(c) => {
            return Err(XmlError::syntax(format!("invalid name `{name}`"), pos))
        }
        Some(_) => {}
    }
    if chars.all(ok_rest) {
        Ok(())
    } else {
        Err(XmlError::syntax(format!("invalid name `{name}`"), pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tokenize `input` pushed in `chunk`-byte pieces; return debug strings.
    fn toks_chunked(input: &str, chunk: usize) -> Vec<String> {
        let mut t = PushTokenizer::new();
        let mut out = Vec::new();
        let mut fed = 0;
        loop {
            match t.step() {
                Ok(TokenStep::Token) => out.push(format!("{:?}", t.token())),
                Ok(TokenStep::End) => break,
                Ok(TokenStep::NeedMoreData) => {
                    if fed < input.len() {
                        let next = (fed + chunk).min(input.len());
                        t.feed(&input.as_bytes()[fed..next]);
                        fed = next;
                    } else {
                        t.finish_input();
                    }
                }
                Err(e) => {
                    out.push(format!("ERR {e}"));
                    break;
                }
            }
        }
        out
    }

    #[test]
    fn chunking_is_invisible() {
        let doc = "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a (b)>]>\
                   <a x=\"1&amp;2\" y='α'>\n t&lt;x \
                   <!-- c -- c --><![CDATA[x < y]]><b/></a>";
        let whole = toks_chunked(doc, doc.len());
        for chunk in [1, 2, 3, 5, 7, 16, 64] {
            assert_eq!(toks_chunked(doc, chunk), whole, "chunk size {chunk}");
        }
    }

    #[test]
    fn split_inside_multibyte_utf8() {
        // 'α' is two bytes; 1-byte chunks split it. Validation is deferred
        // until the token completes, so this must still succeed.
        let doc = "<a>αβγ</a>";
        let toks = toks_chunked(doc, 1);
        assert!(toks.iter().any(|t| t.contains("αβγ")), "{toks:?}");
    }

    #[test]
    fn need_more_data_reports_spillover() {
        let mut t = PushTokenizer::new();
        t.feed(b"<abc def=\"x");
        assert_eq!(t.step().unwrap(), TokenStep::NeedMoreData);
        assert_eq!(t.pending_bytes(), 11, "the partial tag stays buffered");
        t.feed(b"\"/>");
        assert_eq!(t.step().unwrap(), TokenStep::Token);
        match t.token() {
            Token::StartTag(s) => {
                assert_eq!(s.name, "abc");
                assert_eq!(s.attrs.get(0).unwrap().value, "x");
                assert!(s.self_closing);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(t.pending_bytes(), 0);
    }

    #[test]
    fn need_more_data_consumes_nothing() {
        let mut t = PushTokenizer::new();
        t.feed(b"<a>text-without-close");
        assert_eq!(t.step().unwrap(), TokenStep::Token); // <a>
                                                         // The text run cannot complete without a '<' or EOF; repeated
                                                         // steps must be idempotent.
        assert_eq!(t.step().unwrap(), TokenStep::NeedMoreData);
        assert_eq!(t.step().unwrap(), TokenStep::NeedMoreData);
        t.finish_input();
        // After EOF the run is complete (followed by the unclosed-element
        // error at the end of input).
        assert_eq!(t.step().unwrap(), TokenStep::Token);
        match t.token() {
            Token::Text(s) => assert_eq!(s, "text-without-close"),
            other => panic!("{other:?}"),
        }
        assert!(t.step().is_err(), "a is still open at EOF");
    }

    #[test]
    fn eof_mid_token_is_an_error() {
        let mut t = PushTokenizer::new();
        t.feed(b"<a");
        assert_eq!(t.step().unwrap(), TokenStep::NeedMoreData);
        t.finish_input();
        let err = t.step().unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::UnexpectedEof { .. }));
    }

    #[test]
    fn unclosed_elements_detected_at_input_end() {
        let mut t = PushTokenizer::new();
        t.feed(b"<a><b>");
        t.finish_input();
        assert_eq!(t.step().unwrap(), TokenStep::Token);
        assert_eq!(t.step().unwrap(), TokenStep::Token);
        let err = t.step().unwrap_err();
        match err.kind {
            XmlErrorKind::UnclosedElements(names) => assert_eq!(names, ["a", "b"]),
            other => panic!("{other:?}"),
        }
        // Terminal: after the EOF error the tokenizer stays at End.
        assert_eq!(t.step().unwrap(), TokenStep::End);
    }

    #[test]
    fn space_commit_roundtrip_matches_feed() {
        let doc = b"<a><b>x</b></a>";
        let mut t = PushTokenizer::new();
        let gap = t.space(doc.len());
        gap[..doc.len()].copy_from_slice(doc);
        t.commit(doc.len());
        t.finish_input();
        let mut n = 0;
        while t.step().unwrap() == TokenStep::Token {
            n += 1;
        }
        assert_eq!(n, 5);
    }

    #[test]
    fn multi_chunk_tokens_scan_incrementally() {
        // A 100KB text node and a 50KB attribute value fed one byte at a
        // time: without the scan-resume hint this is O(n²) (~10^10 byte
        // comparisons — effectively a hang); with it, linear.
        let big_text = "y".repeat(100_000);
        let big_attr = "v".repeat(50_000);
        let doc = format!("<a k=\"{big_attr}\">{big_text}</a>");
        let toks = toks_chunked(&doc, 1);
        assert_eq!(toks.len(), 3, "{}", toks.len());
        assert!(toks[1].contains(&big_text[..32]));
    }

    #[test]
    fn scan_hint_survives_compaction_and_clears_per_token() {
        // Several suspensions inside one tag, then more tokens: the hint
        // must resume correctly across feeds (which compact the window)
        // and reset between tokens.
        let doc = "<a long=\"xxxxxxxxxxxxxxxx\"><b>tttttttttt</b></a>";
        let whole = toks_chunked(doc, doc.len());
        for chunk in [1, 3, 4, 5] {
            assert_eq!(toks_chunked(doc, chunk), whole, "chunk {chunk}");
        }
    }

    #[test]
    fn memchr1_matches_naive_search() {
        let hay: Vec<u8> = (0..257u16).map(|i| (i % 251) as u8).collect();
        for needle in [0u8, 1, 7, 250, 251, 255] {
            assert_eq!(
                memchr1(needle, &hay),
                hay.iter().position(|&b| b == needle),
                "needle {needle}"
            );
        }
        // Every offset/alignment of a small window.
        let hay = b"abcdefghijklmnopqrstuvwxyz<1234567890";
        for start in 0..hay.len() {
            assert_eq!(
                memchr1(b'<', &hay[start..]),
                hay[start..].iter().position(|&b| b == b'<')
            );
        }
        assert_eq!(memchr1(b'x', b""), None);
        // Borrow false-positive construction: '=' (0x3D == '<' ^ 0x01)
        // directly before the true match inside one word can flip its own
        // lane in the zero detector; the match extraction must still report
        // the '<'. (This is the case that breaks if the first-match lane is
        // read from the wrong end; see `load_le`.)
        let hay = b"aaaaaa=<bbbbbbbb";
        for start in 0..8 {
            assert_eq!(
                memchr1(b'<', &hay[start..]),
                hay[start..].iter().position(|&b| b == b'<'),
                "start {start}"
            );
        }
        assert_eq!(memchr_tag_delim(b"aaaaaa=<bbbbbbbb"), Some(7));
        assert_eq!(memchr_tag_delim(b"aaaaaa!\"bbbbbbbb"), Some(7));
    }
}
