//! Name interning.
//!
//! The GCX buffer stores millions of nodes for large inputs; comparing and
//! storing tag names as strings would dominate memory and time. A
//! [`SymbolTable`] maps each distinct XML name to a dense `u32` [`Symbol`];
//! the buffer, the projection NFA and the evaluator all speak symbols.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// A fast multiply-xor hasher (the FxHash construction) for the interner's
/// map. Interning runs once per start tag and attribute of the stream, so
/// the default DoS-resistant SipHash is measurable overhead; XML names are
/// a tiny closed alphabet, so collision resistance is irrelevant here.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            self.add(u64::from_ne_bytes(bytes[..8].try_into().unwrap()));
            bytes = &bytes[8..];
        }
        if !bytes.is_empty() {
            let mut tail = [0u8; 8];
            tail[..bytes.len()].copy_from_slice(bytes);
            self.add(u64::from_ne_bytes(tail) ^ bytes.len() as u64);
        }
    }
}

/// `BuildHasher` for [`FxHasher`]-keyed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// An interned XML name. Cheap to copy, compare and hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// Index into the owning [`SymbolTable`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// An append-only string interner.
///
/// Symbols are never reclaimed; queries and documents use a small, stable
/// universe of names so the table stays tiny even for very large inputs.
///
/// The table is `Clone` so a compiled query's **pre-interned** table
/// (`gcx-ir`) can seed each run's table: query symbols stay valid verbatim
/// and the tokenizer interns document names on top.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    map: HashMap<Box<str>, Symbol, FxBuildHasher>,
    names: Vec<Box<str>>,
}

impl SymbolTable {
    /// Create an empty table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Intern `name`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&s) = self.map.get(name) {
            return s;
        }
        let sym = Symbol(self.names.len() as u32);
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Look up a name without interning it.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.map.get(name).copied()
    }

    /// The string for `sym`.
    ///
    /// # Panics
    /// Panics if `sym` came from a different table.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no names have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a1 = t.intern("book");
        let a2 = t.intern("book");
        assert_eq!(a1, a2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_names_get_distinct_symbols() {
        let mut t = SymbolTable::new();
        let a = t.intern("book");
        let b = t.intern("article");
        assert_ne!(a, b);
        assert_eq!(t.resolve(a), "book");
        assert_eq!(t.resolve(b), "article");
    }

    #[test]
    fn get_does_not_intern() {
        let mut t = SymbolTable::new();
        assert_eq!(t.get("x"), None);
        let s = t.intern("x");
        assert_eq!(t.get("x"), Some(s));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn symbols_are_dense_indices() {
        let mut t = SymbolTable::new();
        for i in 0..100 {
            let s = t.intern(&format!("n{i}"));
            assert_eq!(s.index(), i);
        }
    }
}
