//! Structured view of a `<!DOCTYPE ...>` declaration payload.
//!
//! The tokenizer delivers a [`Token::Doctype`](crate::Token::Doctype) as
//! the verbatim text between `<!` and the matching `>` (internal subsets
//! with nested `[...]` included). [`DoctypeView::parse`] splits that into
//! the document-element name and the optional internal subset, so schema
//! consumers never re-scan raw declaration syntax. Malformed declarations
//! produce typed [`DoctypeError`]s — never panics: the engine treats an
//! unusable DOCTYPE as "no schema", not as a fatal document error.

use std::fmt;

/// Why a DOCTYPE payload could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DoctypeError {
    /// The payload does not begin with the `DOCTYPE` keyword.
    NotADoctype,
    /// No document-element name follows the keyword.
    MissingName,
    /// An internal subset was opened with `[` but never closed.
    UnterminatedSubset,
    /// Non-whitespace garbage followed the closing `]` of the subset.
    TrailingGarbage,
}

impl fmt::Display for DoctypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DoctypeError::NotADoctype => write!(f, "payload does not start with DOCTYPE"),
            DoctypeError::MissingName => write!(f, "DOCTYPE has no document-element name"),
            DoctypeError::UnterminatedSubset => {
                write!(f, "DOCTYPE internal subset '[' is never closed")
            }
            DoctypeError::TrailingGarbage => {
                write!(f, "unexpected content after DOCTYPE internal subset")
            }
        }
    }
}

impl std::error::Error for DoctypeError {}

/// A parsed `<!DOCTYPE ...>` declaration, borrowing from the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoctypeView<'a> {
    /// The declared document-element name (`site` in `<!DOCTYPE site ...>`).
    pub name: &'a str,
    /// The internal subset between `[` and `]`, brackets excluded, when
    /// one is present. External identifiers (`SYSTEM`/`PUBLIC ...`) are
    /// skipped, not resolved.
    pub subset: Option<&'a str>,
}

impl<'a> DoctypeView<'a> {
    /// Parse a doctype token payload (the text between `<!` and `>`).
    pub fn parse(payload: &'a str) -> Result<DoctypeView<'a>, DoctypeError> {
        let rest = payload
            .strip_prefix("DOCTYPE")
            .ok_or(DoctypeError::NotADoctype)?;
        // The keyword must be delimited: `DOCTYPEsite` is not a doctype.
        if !rest.is_empty() && !rest.starts_with(|c: char| c.is_ascii_whitespace()) {
            return Err(DoctypeError::NotADoctype);
        }
        let rest = rest.trim_start();
        let name_len = rest
            .find(|c: char| c.is_ascii_whitespace() || c == '[' || c == '>')
            .unwrap_or(rest.len());
        let name = &rest[..name_len];
        if name.is_empty() {
            return Err(DoctypeError::MissingName);
        }
        let after_name = &rest[name_len..];
        let Some(open) = after_name.find('[') else {
            // No internal subset; whatever follows is an external id (or
            // nothing) — legal either way, and not our job to resolve.
            return Ok(DoctypeView { name, subset: None });
        };
        // The subset runs to the matching `]` at depth zero: declarations
        // inside never contain bare square brackets, but conditional-
        // section syntax does, so track nesting rather than scanning for
        // the first `]`.
        let body = &after_name[open + 1..];
        let mut depth = 0usize;
        let mut close = None;
        for (i, b) in body.bytes().enumerate() {
            match b {
                b'[' => depth += 1,
                b']' if depth > 0 => depth -= 1,
                b']' => {
                    close = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let Some(close) = close else {
            return Err(DoctypeError::UnterminatedSubset);
        };
        if !body[close + 1..].trim().is_empty() {
            return Err(DoctypeError::TrailingGarbage);
        }
        Ok(DoctypeView {
            name,
            subset: Some(&body[..close]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_only() {
        let v = DoctypeView::parse("DOCTYPE site").unwrap();
        assert_eq!(v.name, "site");
        assert_eq!(v.subset, None);
    }

    #[test]
    fn external_id_is_skipped() {
        let v = DoctypeView::parse("DOCTYPE site SYSTEM \"site.dtd\"").unwrap();
        assert_eq!(v.name, "site");
        assert_eq!(v.subset, None);
    }

    #[test]
    fn internal_subset_is_extracted() {
        let v = DoctypeView::parse("DOCTYPE site [ <!ELEMENT site (a, b)> ]").unwrap();
        assert_eq!(v.name, "site");
        assert_eq!(v.subset, Some(" <!ELEMENT site (a, b)> "));
    }

    #[test]
    fn subset_directly_after_name() {
        let v = DoctypeView::parse("DOCTYPE site[<!ELEMENT site (a)>]").unwrap();
        assert_eq!(v.name, "site");
        assert_eq!(v.subset, Some("<!ELEMENT site (a)>"));
    }

    #[test]
    fn nested_brackets_in_subset() {
        let v = DoctypeView::parse("DOCTYPE d [ <![INCLUDE[ <!ELEMENT d (x)> ]]> ]").unwrap();
        assert_eq!(v.subset, Some(" <![INCLUDE[ <!ELEMENT d (x)> ]]> "));
    }

    #[test]
    fn not_a_doctype() {
        assert_eq!(
            DoctypeView::parse("ELEMENT a (b)"),
            Err(DoctypeError::NotADoctype)
        );
        assert_eq!(
            DoctypeView::parse("DOCTYPEsite"),
            Err(DoctypeError::NotADoctype)
        );
    }

    #[test]
    fn missing_name() {
        assert_eq!(
            DoctypeView::parse("DOCTYPE"),
            Err(DoctypeError::MissingName)
        );
        assert_eq!(
            DoctypeView::parse("DOCTYPE   "),
            Err(DoctypeError::MissingName)
        );
        assert_eq!(
            DoctypeView::parse("DOCTYPE [ <!ELEMENT a (b)> ]"),
            Err(DoctypeError::MissingName),
            "a bare subset is not a name"
        );
    }

    #[test]
    fn unterminated_subset() {
        assert_eq!(
            DoctypeView::parse("DOCTYPE site [ <!ELEMENT a (b)>"),
            Err(DoctypeError::UnterminatedSubset)
        );
    }

    #[test]
    fn trailing_garbage() {
        assert_eq!(
            DoctypeView::parse("DOCTYPE site [ ] junk"),
            Err(DoctypeError::TrailingGarbage)
        );
    }

    /// Drive the push tokenizer over `doc` in `chunk`-byte pieces and
    /// return the first doctype payload (owned), or the tokenizer error.
    fn doctype_chunked(doc: &str, chunk: usize) -> Result<Option<String>, String> {
        let mut t = crate::PushTokenizer::new();
        let mut fed = 0;
        loop {
            match t.step() {
                Ok(crate::TokenStep::Token) => {
                    if let crate::Token::Doctype(d) = t.token() {
                        return Ok(Some(d.to_string()));
                    }
                }
                Ok(crate::TokenStep::End) => return Ok(None),
                Ok(crate::TokenStep::NeedMoreData) => {
                    if fed < doc.len() {
                        let next = (fed + chunk).min(doc.len());
                        t.feed(&doc.as_bytes()[fed..next]);
                        fed = next;
                    } else {
                        t.finish_input();
                    }
                }
                Err(e) => return Err(e.to_string()),
            }
        }
    }

    #[test]
    fn payload_survives_one_byte_feeds() {
        let doc = "<!DOCTYPE site [ <!ELEMENT site (a, b)> <!ELEMENT a EMPTY> ]><site/>";
        let whole = doctype_chunked(doc, doc.len()).unwrap().unwrap();
        for chunk in [1, 2, 3, 7] {
            let payload = doctype_chunked(doc, chunk).unwrap().unwrap();
            assert_eq!(payload, whole, "chunk size {chunk}");
            let v = DoctypeView::parse(&payload).unwrap();
            assert_eq!(v.name, "site");
            assert!(v.subset.unwrap().contains("<!ELEMENT site (a, b)>"));
        }
    }

    #[test]
    fn truncated_doctype_is_a_typed_tokenizer_error() {
        // The stream ends inside the internal subset: the tokenizer must
        // report a well-formedness error, never panic or hang.
        let doc = "<!DOCTYPE site [ <!ELEMENT site (a";
        for chunk in [1, doc.len()] {
            let err = doctype_chunked(doc, chunk).unwrap_err();
            assert!(err.contains("DOCTYPE"), "chunk {chunk}: {err}");
        }
    }
}
