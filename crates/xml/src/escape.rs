//! Escaping and entity resolution.
//!
//! XML defines five predefined entities (`&lt;` `&gt;` `&amp;` `&apos;`
//! `&quot;`) plus numeric character references (`&#10;`, `&#x1F600;`). The
//! tokenizer uses [`unescape_into`] when lending text and attribute values;
//! the writer uses [`escape_text`] / [`escape_attr`]. Both sides avoid
//! allocation when no rewriting is needed.

use std::borrow::Cow;

/// Escape character data for element content.
///
/// `<`, `&` must be escaped in content; we also escape `>` (required only in
/// the `]]>` sequence, but escaping it always is valid and simpler).
/// Returns the input unchanged (borrowed) when nothing needs escaping.
pub fn escape_text(s: &str) -> Cow<'_, str> {
    escape_impl(s, false)
}

/// Escape an attribute value for inclusion in double quotes.
pub fn escape_attr(s: &str) -> Cow<'_, str> {
    escape_impl(s, true)
}

fn escape_impl(s: &str, attr: bool) -> Cow<'_, str> {
    let needs =
        |b: u8| matches!(b, b'<' | b'>' | b'&') || (attr && matches!(b, b'"' | b'\n' | b'\t'));
    let Some(first) = s.bytes().position(needs) else {
        return Cow::Borrowed(s);
    };
    let mut out = String::with_capacity(s.len() + 8);
    out.push_str(&s[..first]);
    for ch in s[first..].chars() {
        match ch {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' if attr => out.push_str("&quot;"),
            // Escape whitespace in attributes so it survives attribute-value
            // normalization on re-parse.
            '\n' if attr => out.push_str("&#10;"),
            '\t' if attr => out.push_str("&#9;"),
            c => out.push(c),
        }
    }
    Cow::Owned(out)
}

/// Resolve one entity body (the part between `&` and `;`).
///
/// Returns `None` for unknown names or malformed/invalid numeric references.
pub fn resolve_entity(body: &str) -> Option<char> {
    match body {
        "lt" => Some('<'),
        "gt" => Some('>'),
        "amp" => Some('&'),
        "apos" => Some('\''),
        "quot" => Some('"'),
        _ => {
            let rest = body.strip_prefix('#')?;
            let cp = if let Some(hex) = rest.strip_prefix('x').or_else(|| rest.strip_prefix('X')) {
                u32::from_str_radix(hex, 16).ok()?
            } else {
                rest.parse::<u32>().ok()?
            };
            char::from_u32(cp)
        }
    }
}

/// Unescape `raw`, appending the result to `out`.
///
/// Returns `Err(entity_body)` on the first unknown/malformed entity.
/// A trailing bare `&` (no `;` before the end) is also an error, reported as
/// the partial body seen.
pub fn unescape_into<'a>(raw: &'a str, out: &mut String) -> Result<(), &'a str> {
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        let Some(semi) = after.find(';') else {
            return Err(after);
        };
        let body = &after[..semi];
        match resolve_entity(body) {
            Some(c) => out.push(c),
            None => return Err(body),
        }
        rest = &after[semi + 1..];
    }
    out.push_str(rest);
    Ok(())
}

/// Unescape into a [`Cow`], borrowing when the input contains no entities.
pub fn unescape(raw: &str) -> Result<Cow<'_, str>, String> {
    if !raw.contains('&') {
        return Ok(Cow::Borrowed(raw));
    }
    let mut out = String::with_capacity(raw.len());
    unescape_into(raw, &mut out).map_err(|e| e.to_string())?;
    Ok(Cow::Owned(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_borrows_when_clean() {
        assert!(matches!(escape_text("hello world"), Cow::Borrowed(_)));
        assert!(matches!(escape_attr("plain"), Cow::Borrowed(_)));
    }

    #[test]
    fn escape_text_rewrites_specials() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
    }

    #[test]
    fn escape_attr_quotes_and_whitespace() {
        assert_eq!(escape_attr("a\"b\nc\td"), "a&quot;b&#10;c&#9;d");
    }

    #[test]
    fn escape_text_leaves_quotes_alone() {
        assert_eq!(escape_text("say \"hi\""), "say \"hi\"");
    }

    #[test]
    fn resolve_predefined() {
        assert_eq!(resolve_entity("lt"), Some('<'));
        assert_eq!(resolve_entity("gt"), Some('>'));
        assert_eq!(resolve_entity("amp"), Some('&'));
        assert_eq!(resolve_entity("apos"), Some('\''));
        assert_eq!(resolve_entity("quot"), Some('"'));
    }

    #[test]
    fn resolve_numeric() {
        assert_eq!(resolve_entity("#65"), Some('A'));
        assert_eq!(resolve_entity("#x41"), Some('A'));
        assert_eq!(resolve_entity("#x1F600"), Some('😀'));
    }

    #[test]
    fn resolve_rejects_garbage() {
        assert_eq!(resolve_entity("nbsp"), None);
        assert_eq!(resolve_entity("#xZZ"), None);
        assert_eq!(resolve_entity("#xD800"), None); // surrogate
        assert_eq!(resolve_entity(""), None);
    }

    #[test]
    fn unescape_roundtrips_escaped_text() {
        let original = "a<b&c>\"quoted\"";
        let escaped = escape_text(original);
        assert_eq!(unescape(&escaped).unwrap(), original);
    }

    #[test]
    fn unescape_reports_bad_entity() {
        assert_eq!(unescape("a&bogus;b").unwrap_err(), "bogus");
        assert_eq!(unescape("a&nosemi").unwrap_err(), "nosemi");
    }

    #[test]
    fn unescape_borrows_when_clean() {
        assert!(matches!(unescape("clean text").unwrap(), Cow::Borrowed(_)));
    }

    #[test]
    fn unescape_handles_adjacent_entities() {
        assert_eq!(unescape("&lt;&gt;&amp;").unwrap(), "<>&");
    }
}
