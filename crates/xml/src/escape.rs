//! Escaping and entity resolution.
//!
//! XML defines five predefined entities (`&lt;` `&gt;` `&amp;` `&apos;`
//! `&quot;`) plus numeric character references (`&#10;`, `&#x1F600;`). The
//! tokenizer uses [`unescape_into`] when lending text and attribute values;
//! the writer uses [`escape_text`] / [`escape_attr`]. Both sides avoid
//! allocation when no rewriting is needed.

use std::borrow::Cow;

/// Escape character data for element content.
///
/// `<`, `&` must be escaped in content; we also escape `>` (required only in
/// the `]]>` sequence, but escaping it always is valid and simpler).
/// Returns the input unchanged (borrowed) when nothing needs escaping.
pub fn escape_text(s: &str) -> Cow<'_, str> {
    escape_impl(s, false)
}

/// Escape an attribute value for inclusion in double quotes.
pub fn escape_attr(s: &str) -> Cow<'_, str> {
    escape_impl(s, true)
}

/// First byte of `s` (from `from`) that [`escape_impl`] would rewrite, or
/// `None`. Shared by the Cow API and the writer's zero-allocation path.
pub(crate) fn first_escape_byte(s: &str, from: usize, attr: bool) -> Option<usize> {
    s.as_bytes()[from..]
        .iter()
        .position(|&b| {
            matches!(b, b'<' | b'>' | b'&' | b'\r') || (attr && matches!(b, b'"' | b'\n' | b'\t'))
        })
        .map(|i| from + i)
}

/// The entity a single escaped byte rewrites to (context from
/// [`first_escape_byte`]: `\r` always escapes — a raw CR would be lost to
/// line-ending normalization on re-parse; `"`/`\n`/`\t` only in attributes).
pub(crate) fn escape_entity(b: u8) -> &'static str {
    match b {
        b'<' => "&lt;",
        b'>' => "&gt;",
        b'&' => "&amp;",
        b'"' => "&quot;",
        b'\n' => "&#10;",
        b'\t' => "&#9;",
        b'\r' => "&#13;",
        _ => unreachable!("not an escapable byte"),
    }
}

fn escape_impl(s: &str, attr: bool) -> Cow<'_, str> {
    // One authoritative table: the same first_escape_byte/escape_entity
    // pair drives the writer's zero-allocation path. Every escapable byte
    // is ASCII, so byte-granular splitting is char-safe.
    let Some(first) = first_escape_byte(s, 0, attr) else {
        return Cow::Borrowed(s);
    };
    let mut out = String::with_capacity(s.len() + 8);
    let mut from = 0;
    let mut next = Some(first);
    while let Some(i) = next {
        out.push_str(&s[from..i]);
        out.push_str(escape_entity(s.as_bytes()[i]));
        from = i + 1;
        next = first_escape_byte(s, from, attr);
    }
    out.push_str(&s[from..]);
    Cow::Owned(out)
}

/// Resolve one entity body (the part between `&` and `;`).
///
/// Returns `None` for unknown names or malformed/invalid numeric references.
pub fn resolve_entity(body: &str) -> Option<char> {
    match body {
        "lt" => Some('<'),
        "gt" => Some('>'),
        "amp" => Some('&'),
        "apos" => Some('\''),
        "quot" => Some('"'),
        _ => {
            let rest = body.strip_prefix('#')?;
            let cp = if let Some(hex) = rest.strip_prefix('x').or_else(|| rest.strip_prefix('X')) {
                u32::from_str_radix(hex, 16).ok()?
            } else {
                rest.parse::<u32>().ok()?
            };
            char::from_u32(cp)
        }
    }
}

/// Unescape `raw`, appending the result to `out`.
///
/// Returns `Err(entity_body)` on the first unknown/malformed entity.
/// A trailing bare `&` (no `;` before the end) is also an error, reported as
/// the partial body seen.
pub fn unescape_into<'a>(raw: &'a str, out: &mut String) -> Result<(), &'a str> {
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        let Some(semi) = after.find(';') else {
            return Err(after);
        };
        let body = &after[..semi];
        match resolve_entity(body) {
            Some(c) => out.push(c),
            None => return Err(body),
        }
        rest = &after[semi + 1..];
    }
    out.push_str(rest);
    Ok(())
}

/// XML 1.0 §2.11: translate `\r\n` and bare `\r` to `\n`, appending to
/// `out`. Used for CDATA sections (no entity processing there).
pub fn normalize_newlines_into(raw: &str, out: &mut String) {
    let mut rest = raw;
    while let Some(cr) = rest.find('\r') {
        out.push_str(&rest[..cr]);
        out.push('\n');
        rest = &rest[cr + 1..];
        if rest.as_bytes().first() == Some(&b'\n') {
            rest = &rest[1..];
        }
    }
    out.push_str(rest);
}

/// Line-ending normalization (§2.11) **and** entity resolution in one pass,
/// appending to `out`. Characters produced by character references are not
/// normalized (`&#13;` stays a literal CR, per spec).
///
/// Returns `Err(entity_body)` on the first unknown/malformed entity.
pub fn normalize_unescape_into<'a>(raw: &'a str, out: &mut String) -> Result<(), &'a str> {
    let mut rest = raw;
    loop {
        let Some(stop) = rest.bytes().position(|b| b == b'&' || b == b'\r') else {
            out.push_str(rest);
            return Ok(());
        };
        out.push_str(&rest[..stop]);
        if rest.as_bytes()[stop] == b'\r' {
            out.push('\n');
            rest = &rest[stop + 1..];
            if rest.as_bytes().first() == Some(&b'\n') {
                rest = &rest[1..];
            }
            continue;
        }
        let after = &rest[stop + 1..];
        let Some(semi) = after.find(';') else {
            return Err(after);
        };
        let body = &after[..semi];
        match resolve_entity(body) {
            Some(c) => out.push(c),
            None => return Err(body),
        }
        rest = &after[semi + 1..];
    }
}

/// Attribute-value processing: line-ending normalization (§2.11),
/// attribute-value normalization (§3.3.3: literal whitespace becomes a
/// space — we assume CDATA-type attributes, having no DTD) and entity
/// resolution, in one pass appending to `out`. Characters produced by
/// character references are exempt from both normalizations, per spec.
///
/// Returns `Err(entity_body)` on the first unknown/malformed entity.
pub fn normalize_attr_into<'a>(raw: &'a str, out: &mut String) -> Result<(), &'a str> {
    let mut rest = raw;
    loop {
        let Some(stop) = rest
            .bytes()
            .position(|b| matches!(b, b'&' | b'\r' | b'\n' | b'\t'))
        else {
            out.push_str(rest);
            return Ok(());
        };
        out.push_str(&rest[..stop]);
        let b = rest.as_bytes()[stop];
        if b != b'&' {
            out.push(' ');
            rest = &rest[stop + 1..];
            if b == b'\r' && rest.as_bytes().first() == Some(&b'\n') {
                rest = &rest[1..];
            }
            continue;
        }
        let after = &rest[stop + 1..];
        let Some(semi) = after.find(';') else {
            return Err(after);
        };
        let body = &after[..semi];
        match resolve_entity(body) {
            Some(c) => out.push(c),
            None => return Err(body),
        }
        rest = &after[semi + 1..];
    }
}

/// Unescape into a [`Cow`], borrowing when the input contains no entities.
pub fn unescape(raw: &str) -> Result<Cow<'_, str>, String> {
    if !raw.contains('&') {
        return Ok(Cow::Borrowed(raw));
    }
    let mut out = String::with_capacity(raw.len());
    unescape_into(raw, &mut out).map_err(|e| e.to_string())?;
    Ok(Cow::Owned(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_borrows_when_clean() {
        assert!(matches!(escape_text("hello world"), Cow::Borrowed(_)));
        assert!(matches!(escape_attr("plain"), Cow::Borrowed(_)));
    }

    #[test]
    fn escape_text_rewrites_specials() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
    }

    #[test]
    fn escape_attr_quotes_and_whitespace() {
        assert_eq!(escape_attr("a\"b\nc\td"), "a&quot;b&#10;c&#9;d");
    }

    #[test]
    fn carriage_return_escaped_everywhere() {
        // A raw CR would be lost to line-ending normalization on re-parse.
        assert_eq!(escape_attr("a\rb"), "a&#13;b");
        assert_eq!(escape_text("a\rb"), "a&#13;b");
    }

    #[test]
    fn newline_normalization() {
        let mut out = String::new();
        normalize_newlines_into("a\r\nb\rc\nd\r", &mut out);
        assert_eq!(out, "a\nb\nc\nd\n");
    }

    #[test]
    fn attr_normalization_whitespace_to_space() {
        // §2.11 + §3.3.3: literal CRLF/CR/LF/TAB all become one space;
        // character references keep their exact characters.
        let mut out = String::new();
        normalize_attr_into("a\r\nb\rc\nd\te", &mut out).unwrap();
        assert_eq!(out, "a b c d e");
        out.clear();
        normalize_attr_into("x&#10;y&#9;z&#13;w&amp;v", &mut out).unwrap();
        assert_eq!(out, "x\ny\tz\rw&v");
        assert_eq!(
            normalize_attr_into("a&bogus;b", &mut String::new()),
            Err("bogus")
        );
    }

    #[test]
    fn normalize_unescape_combined() {
        let mut out = String::new();
        normalize_unescape_into("x\r\ny&amp;z\r", &mut out).unwrap();
        assert_eq!(out, "x\ny&z\n");
        // Character references are NOT normalized: &#13; stays a CR.
        out.clear();
        normalize_unescape_into("a&#13;b", &mut out).unwrap();
        assert_eq!(out, "a\rb");
        // CRLF split across an entity boundary is two separate characters,
        // so the CR (literal) normalizes but the referenced LF stays.
        out.clear();
        normalize_unescape_into("a\r&#10;b", &mut out).unwrap();
        assert_eq!(out, "a\n\nb");
    }

    #[test]
    fn escape_text_leaves_quotes_alone() {
        assert_eq!(escape_text("say \"hi\""), "say \"hi\"");
    }

    #[test]
    fn resolve_predefined() {
        assert_eq!(resolve_entity("lt"), Some('<'));
        assert_eq!(resolve_entity("gt"), Some('>'));
        assert_eq!(resolve_entity("amp"), Some('&'));
        assert_eq!(resolve_entity("apos"), Some('\''));
        assert_eq!(resolve_entity("quot"), Some('"'));
    }

    #[test]
    fn resolve_numeric() {
        assert_eq!(resolve_entity("#65"), Some('A'));
        assert_eq!(resolve_entity("#x41"), Some('A'));
        assert_eq!(resolve_entity("#x1F600"), Some('😀'));
    }

    #[test]
    fn resolve_rejects_garbage() {
        assert_eq!(resolve_entity("nbsp"), None);
        assert_eq!(resolve_entity("#xZZ"), None);
        assert_eq!(resolve_entity("#xD800"), None); // surrogate
        assert_eq!(resolve_entity(""), None);
    }

    #[test]
    fn unescape_roundtrips_escaped_text() {
        let original = "a<b&c>\"quoted\"";
        let escaped = escape_text(original);
        assert_eq!(unescape(&escaped).unwrap(), original);
    }

    #[test]
    fn unescape_reports_bad_entity() {
        assert_eq!(unescape("a&bogus;b").unwrap_err(), "bogus");
        assert_eq!(unescape("a&nosemi").unwrap_err(), "nosemi");
    }

    #[test]
    fn unescape_borrows_when_clean() {
        assert!(matches!(unescape("clean text").unwrap(), Cow::Borrowed(_)));
    }

    #[test]
    fn unescape_handles_adjacent_entities() {
        assert_eq!(unescape("&lt;&gt;&amp;").unwrap(), "<>&");
    }
}
