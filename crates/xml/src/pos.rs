//! Source positions for diagnostics.

use std::fmt;

/// A position inside the XML input, tracked byte-exactly by the tokenizer.
///
/// `line` and `column` are 1-based (as editors display them); `offset` is the
/// 0-based byte offset from the start of the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TextPos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column (in bytes, not grapheme clusters).
    pub column: u32,
    /// 0-based byte offset from the beginning of the stream.
    pub offset: u64,
}

impl TextPos {
    /// The position of the very first byte.
    pub const START: TextPos = TextPos {
        line: 1,
        column: 1,
        offset: 0,
    };

    /// Advance the position over `bytes`, updating line/column bookkeeping.
    /// Counting newlines in bulk (instead of branching per byte) lets the
    /// compiler vectorize this, which matters: every consumed token passes
    /// through here.
    pub fn advance(&mut self, bytes: &[u8]) {
        self.offset += bytes.len() as u64;
        match bytes.iter().rposition(|&b| b == b'\n') {
            Some(last) => {
                let newlines = 1 + bytes[..last].iter().filter(|&&b| b == b'\n').count();
                self.line += newlines as u32;
                self.column = (bytes.len() - last) as u32;
            }
            None => self.column += bytes.len() as u32,
        }
    }
}

impl Default for TextPos {
    fn default() -> Self {
        TextPos::START
    }
}

impl fmt::Display for TextPos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_lines_and_columns() {
        let mut p = TextPos::START;
        p.advance(b"ab\ncd");
        assert_eq!(p.line, 2);
        assert_eq!(p.column, 3);
        assert_eq!(p.offset, 5);
    }

    #[test]
    fn display_is_line_colon_column() {
        let mut p = TextPos::START;
        p.advance(b"\n\nxy");
        assert_eq!(p.to_string(), "3:3");
    }

    #[test]
    fn empty_advance_is_noop() {
        let mut p = TextPos::START;
        p.advance(b"");
        assert_eq!(p, TextPos::START);
    }
}
