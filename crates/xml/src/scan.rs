//! Lightweight structural boundary scanner for partition-parallel
//! evaluation (`gcx-par`).
//!
//! Finds the byte offsets of shallow start tags — candidate shard split
//! points — without running the full tokenizer: no attribute parsing, no
//! entity resolution, no text handling. The scanner only tracks element
//! depth, which requires it to be *exactly* right about what is markup:
//! comments, processing instructions, CDATA sections, the DOCTYPE
//! declaration (including an internal subset with quotes, comments and
//! PIs inside), and `>` characters inside quoted attribute values are all
//! skipped without touching the depth counter. In well-formed XML a
//! literal `<` can appear only as markup (text and attribute values must
//! escape it), so scanning for `<` is sound; on malformed input the
//! scanner errors out and the caller falls back to the serial path, where
//! the real tokenizer reports the problem with proper positions.
//!
//! The differential test `crates/xml/tests/scan_differential.rs`
//! byte-compares the scanner's recorded offsets and depths against
//! [`crate::PushTokenizer`]'s token stream on generated documents.

/// One recorded start tag: a candidate split point, with enough
/// information to rebuild the ancestor context of any later offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Boundary {
    /// Byte offset of the `<` of the start tag.
    pub start: usize,
    /// One past the `>` of the start tag.
    pub tag_end: usize,
    /// Byte range of the element name within the document.
    pub name_start: usize,
    /// End of the name range (exclusive).
    pub name_end: usize,
    /// 0-based element depth (the root element is depth 0).
    pub depth: u16,
    /// True for `<a/>`-style self-closing tags.
    pub self_closing: bool,
}

/// One structural event at recorded depth (≤ the scan's `max_depth`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanEvent {
    /// A start tag opened an element at recorded depth.
    Open(Boundary),
    /// An end tag closed an element at recorded depth.
    Close {
        /// Depth of the element being closed.
        depth: u16,
        /// Byte offset of the `<` of the end tag.
        start: usize,
    },
}

/// The scan result: shallow structural events plus the root element's
/// extent. Everything a splitter needs to cut the document into
/// contiguous byte ranges and synthesize ancestor context per shard.
#[derive(Debug, Clone)]
pub struct ScanOutline {
    /// Open/Close events at depth ≤ `max_depth`, in document order.
    pub events: Vec<ScanEvent>,
    /// One past the `>` of the root element's start tag. The byte range
    /// `0..root_open_end` is the shared shard prelude: XML declaration,
    /// DOCTYPE (so per-shard schema adoption matches the serial run),
    /// miscellaneous comments/PIs, and the root start tag itself.
    pub root_open_end: usize,
    /// Byte offset of the `<` of the root element's end tag (for a
    /// self-closing root, equals the root start tag's `start`).
    pub root_close_start: usize,
}

/// Why a scan gave up. Callers treat any error as "don't parallelize".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanError {
    /// Byte offset the scanner stopped at.
    pub offset: usize,
    /// What it could not handle.
    pub reason: &'static str,
}

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "boundary scan failed at byte {}: {}",
            self.offset, self.reason
        )
    }
}

impl std::error::Error for ScanError {}

fn err<T>(offset: usize, reason: &'static str) -> Result<T, ScanError> {
    Err(ScanError { offset, reason })
}

/// Find `needle` in `hay[from..]`, returning the absolute offset. Rides
/// the tokenizer's SWAR substring scanner.
fn find(hay: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    if from > hay.len() {
        return None;
    }
    crate::push::find_sub(&hay[from..], needle).map(|p| p + from)
}

fn is_name_end(b: u8) -> bool {
    matches!(b, b' ' | b'\t' | b'\r' | b'\n' | b'/' | b'>')
}

/// Skip a DOCTYPE declaration starting at `i` (the `<`). Handles quoted
/// strings, an internal subset in `[...]`, and comments/PIs inside it.
fn skip_doctype(doc: &[u8], i: usize) -> Result<usize, ScanError> {
    let mut j = i + "<!DOCTYPE".len();
    let mut brackets = 0usize;
    while j < doc.len() {
        match doc[j] {
            b'"' | b'\'' => {
                let q = doc[j];
                j += 1;
                while j < doc.len() && doc[j] != q {
                    j += 1;
                }
                if j == doc.len() {
                    return err(i, "unterminated quote in DOCTYPE");
                }
                j += 1;
            }
            b'[' => {
                brackets += 1;
                j += 1;
            }
            b']' => {
                brackets = brackets.saturating_sub(1);
                j += 1;
            }
            b'<' => {
                if doc[j..].starts_with(b"<!--") {
                    match find(doc, j + 4, b"-->") {
                        Some(e) => j = e + 3,
                        None => return err(j, "unterminated comment in DOCTYPE"),
                    }
                } else if doc[j..].starts_with(b"<?") {
                    match find(doc, j + 2, b"?>") {
                        Some(e) => j = e + 2,
                        None => return err(j, "unterminated PI in DOCTYPE"),
                    }
                } else {
                    j += 1;
                }
            }
            b'>' if brackets == 0 => return Ok(j + 1),
            _ => j += 1,
        }
    }
    err(i, "unterminated DOCTYPE")
}

/// Scan `doc` and record structural events at element depth ≤
/// `max_depth`. Returns an error on anything it cannot classify with
/// certainty (mismatched tags, unterminated constructs, content after the
/// root element other than comments/PIs/whitespace).
pub fn scan_boundaries(doc: &[u8], max_depth: u16) -> Result<ScanOutline, ScanError> {
    let mut events = Vec::new();
    let mut depth: u32 = 0;
    let mut root_open_end: Option<usize> = None;
    let mut root_close_start: Option<usize> = None;
    let mut i = 0usize;
    while i < doc.len() {
        let Some(lt) = crate::push::memchr1(b'<', &doc[i..]).map(|p| p + i) else {
            break;
        };
        if depth == 0 {
            // Outside the root element only markup and whitespace may
            // appear; any stray text is malformed.
            if doc[i..lt].iter().any(|b| !b.is_ascii_whitespace()) {
                return err(i, "text outside the root element");
            }
        }
        i = lt;
        let next = *doc.get(i + 1).ok_or(ScanError {
            offset: i,
            reason: "document ends at '<'",
        })?;
        match next {
            b'?' => match find(doc, i + 2, b"?>") {
                Some(e) => i = e + 2,
                None => return err(i, "unterminated processing instruction"),
            },
            b'!' => {
                if doc[i..].starts_with(b"<!--") {
                    match find(doc, i + 4, b"-->") {
                        Some(e) => i = e + 3,
                        None => return err(i, "unterminated comment"),
                    }
                } else if doc[i..].starts_with(b"<![CDATA[") {
                    if depth == 0 {
                        return err(i, "CDATA outside the root element");
                    }
                    match find(doc, i + 9, b"]]>") {
                        Some(e) => i = e + 3,
                        None => return err(i, "unterminated CDATA section"),
                    }
                } else if doc[i..].starts_with(b"<!DOCTYPE") {
                    if depth > 0 || root_open_end.is_some() {
                        return err(i, "DOCTYPE inside content");
                    }
                    i = skip_doctype(doc, i)?;
                } else {
                    return err(i, "unrecognized markup declaration");
                }
            }
            b'/' => {
                let Some(gt) = find(doc, i + 2, b">") else {
                    return err(i, "unterminated end tag");
                };
                if depth == 0 {
                    return err(i, "end tag with no open element");
                }
                depth -= 1;
                if depth <= max_depth as u32 {
                    events.push(ScanEvent::Close {
                        depth: depth as u16,
                        start: i,
                    });
                }
                if depth == 0 {
                    root_close_start = Some(i);
                }
                i = gt + 1;
            }
            _ => {
                if root_close_start.is_some() {
                    return err(i, "second root element");
                }
                // Start tag: parse the name, then find the closing `>`
                // honoring quoted attribute values (which may contain
                // `>` but never a literal `<`).
                let name_start = i + 1;
                let mut j = name_start;
                while j < doc.len() && !is_name_end(doc[j]) {
                    j += 1;
                }
                if j == name_start {
                    return err(i, "empty element name");
                }
                let name_end = j;
                let self_closing;
                loop {
                    let Some(d) = crate::push::memchr_tag_delim(&doc[j..]).map(|p| p + j) else {
                        return err(i, "unterminated start tag");
                    };
                    match doc[d] {
                        b'"' | b'\'' => {
                            let Some(close) =
                                crate::push::memchr1(doc[d], &doc[d + 1..]).map(|p| p + d + 1)
                            else {
                                return err(i, "unterminated attribute value");
                            };
                            j = close + 1;
                        }
                        b'>' => {
                            self_closing = d > name_start && doc[d - 1] == b'/';
                            j = d + 1;
                            break;
                        }
                        // A `<` inside a start tag is malformed.
                        _ => return err(d, "'<' inside a start tag"),
                    }
                }
                if depth <= max_depth as u32 {
                    events.push(ScanEvent::Open(Boundary {
                        start: i,
                        tag_end: j,
                        name_start,
                        name_end,
                        depth: depth as u16,
                        self_closing,
                    }));
                }
                if depth == 0 {
                    root_open_end = Some(j);
                    if self_closing {
                        root_close_start = Some(i);
                    }
                }
                if !self_closing {
                    depth += 1;
                }
                i = j;
            }
        }
    }
    if depth != 0 {
        return err(doc.len(), "unclosed elements at end of input");
    }
    match (root_open_end, root_close_start) {
        (Some(open), Some(close)) => Ok(ScanOutline {
            events,
            root_open_end: open,
            root_close_start: close,
        }),
        _ => err(doc.len(), "no root element"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(doc: &[u8], outline: &ScanOutline) -> Vec<(String, u16)> {
        outline
            .events
            .iter()
            .filter_map(|e| match e {
                ScanEvent::Open(b) => Some((
                    String::from_utf8_lossy(&doc[b.name_start..b.name_end]).into_owned(),
                    b.depth,
                )),
                ScanEvent::Close { .. } => None,
            })
            .collect()
    }

    #[test]
    fn records_shallow_tags_with_depths() {
        let doc = b"<r><a><x/></a><b>t</b></r>";
        let o = scan_boundaries(doc, 1).unwrap();
        assert_eq!(
            names(doc, &o),
            vec![
                ("r".to_string(), 0),
                ("a".to_string(), 1),
                ("b".to_string(), 1)
            ]
        );
        assert_eq!(o.root_open_end, 3);
        assert_eq!(o.root_close_start, doc.len() - 4);
    }

    #[test]
    fn skips_comments_pis_cdata_doctype() {
        let doc = b"<?xml version=\"1.0\"?><!DOCTYPE r [<!ELEMENT r (a)*> <!-- <fake> -->]>\
            <r><!-- <a> --><?pi <b> ?><a><![CDATA[</r><z>]]></a></r>";
        let o = scan_boundaries(doc, 3).unwrap();
        assert_eq!(
            names(doc, &o),
            vec![("r".to_string(), 0), ("a".to_string(), 1)]
        );
    }

    #[test]
    fn quoted_gt_in_attribute_does_not_end_tag() {
        let doc = br#"<r><a k="1>2" j='>'><c/></a></r>"#;
        let o = scan_boundaries(doc, 3).unwrap();
        let open_a = o
            .events
            .iter()
            .find_map(|e| match e {
                ScanEvent::Open(b) if b.depth == 1 => Some(*b),
                _ => None,
            })
            .unwrap();
        assert_eq!(&doc[open_a.start..open_a.tag_end], br#"<a k="1>2" j='>'>"#);
        assert!(!open_a.self_closing);
    }

    #[test]
    fn self_closing_and_depth_bounds() {
        let doc = b"<r><a/><b><c><d/></c></b></r>";
        let o = scan_boundaries(doc, 1).unwrap();
        let opens = names(doc, &o);
        assert_eq!(
            opens,
            vec![
                ("r".to_string(), 0),
                ("a".to_string(), 1),
                ("b".to_string(), 1)
            ]
        );
        // Depth-2 `c` and depth-3 `d` are not recorded at max_depth 1.
        assert_eq!(o.events.len(), 3 + 2); // 3 opens + closes for b and r (a is self-closing)
    }

    #[test]
    fn rejects_malformed() {
        assert!(scan_boundaries(b"<r>", 1).is_err());
        assert!(scan_boundaries(b"</r>", 1).is_err());
        assert!(scan_boundaries(b"<r></r><q></q>", 1).is_err());
        assert!(scan_boundaries(b"<r><!-- never", 1).is_err());
        assert!(scan_boundaries(b"hello", 1).is_err());
    }
}
