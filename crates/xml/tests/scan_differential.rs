//! Fuzz-style differential: the boundary scanner (`scan_boundaries`)
//! against the real [`PushTokenizer`] on generated documents.
//!
//! The scanner's one job is to be *exactly* right about element depth
//! transitions while understanding none of the content — so the test
//! generates documents dense with the constructs that could fool a
//! naive `<`-counter (comments containing fake tags, CDATA containing
//! end tags, processing instructions, DOCTYPE internal subsets,
//! entity-encoded angle brackets in text, `>` and quotes inside
//! attribute values) and asserts that the scanner's recorded events
//! match the tokenizer's depth transitions name for name, depth for
//! depth — and that every recorded byte offset really points at the
//! tag it claims to.

use gcx_xml::{scan_boundaries, PushTokenizer, ScanEvent, Token, TokenStep};

/// Deterministic generator state (xorshift64*, no external deps).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() as usize) % n
    }

    fn pick<'a>(&mut self, options: &[&'a str]) -> &'a str {
        options[self.below(options.len())]
    }
}

const NAMES: &[&str] = &["a", "b", "item", "name", "x", "region", "q2"];
/// Text fragments, heavy on entity-encoded angle brackets: an expanded
/// `<` must never become a boundary.
const TEXTS: &[&str] = &[
    "plain",
    "&lt;fake&gt;",
    "&amp;&apos;&quot;",
    "a &#60;b&#62; c",
    "  spaced  ",
    "&#x3C;x/&#x3E;",
];
const ATTR_VALUES: &[&str] = &["v", "1>2", "a&lt;b", "with 'single'", ">>>", "/>"];
const COMMENTS: &[&str] = &[
    "<!-- <a><b/></a> -->",
    "<!-- </r> -->",
    "<!---->",
    "<!-- ]]> -->",
];
const PIS: &[&str] = &["<?pi <x> ?>", "<?target </deep> ?>"];
const CDATAS: &[&str] = &[
    "<![CDATA[</r><z>]]>",
    "<![CDATA[<!-- not a comment -->]]>",
    "<![CDATA[]]>",
];

/// Append a random element subtree (start tag, mixed content, end tag).
fn gen_element(rng: &mut XorShift, out: &mut String, depth: usize) {
    let name = rng.pick(NAMES);
    out.push('<');
    out.push_str(name);
    for i in 0..rng.below(3) {
        let quote = if rng.below(2) == 0 { '"' } else { '\'' };
        let value = rng.pick(ATTR_VALUES);
        // A value containing the quote character would end it early.
        if value.contains(quote) {
            continue;
        }
        out.push_str(&format!(" k{i}={quote}{value}{quote}"));
    }
    if depth >= 4 || rng.below(5) == 0 {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for _ in 0..rng.below(4) {
        match rng.below(8) {
            0..=2 => gen_element(rng, out, depth + 1),
            3..=4 => out.push_str(rng.pick(TEXTS)),
            5 => out.push_str(rng.pick(COMMENTS)),
            6 => out.push_str(rng.pick(PIS)),
            _ => out.push_str(rng.pick(CDATAS)),
        }
    }
    out.push_str("</");
    out.push_str(name);
    out.push('>');
}

/// A whole document: optional XML declaration, DOCTYPE with a tricky
/// internal subset, comments/PIs around the root element.
fn gen_doc(rng: &mut XorShift) -> String {
    let mut doc = String::new();
    if rng.below(2) == 0 {
        doc.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    }
    if rng.below(2) == 0 {
        doc.push_str(
            "<!DOCTYPE r [<!ELEMENT r ANY> <!-- <fake/> --> \
             <?pi > ?> <!ENTITY e \"<evil/>\">]>\n",
        );
    }
    if rng.below(3) == 0 {
        doc.push_str("<!-- prolog <comment> -->");
    }
    doc.push_str("<r>");
    for _ in 0..1 + rng.below(6) {
        gen_element(rng, &mut doc, 1);
    }
    doc.push_str("</r>");
    if rng.below(3) == 0 {
        doc.push_str("\n<?epilog </r> ?><!-- done -->");
    }
    doc
}

/// A depth transition, the common currency of both sides.
#[derive(Debug, PartialEq, Eq)]
enum Ev {
    Open(String, u16, bool),
    Close(u16),
}

/// The tokenizer's view: feed the document in `chunk`-byte pieces and
/// record every element transition at depth ≤ `max_depth`. Self-closing
/// tags are one `Open` with the flag, no `Close` — the scanner's
/// convention, and the tokenizer's too.
fn tokenizer_events(doc: &[u8], max_depth: u16, chunk: usize) -> Vec<Ev> {
    let mut events = Vec::new();
    let mut depth: u32 = 0;
    let mut fed = 0usize;
    let mut tok = PushTokenizer::new();
    loop {
        match tok.step().expect("generated document must tokenize") {
            TokenStep::End => break,
            TokenStep::NeedMoreData => {
                if fed == doc.len() {
                    tok.finish_input();
                } else {
                    let n = chunk.min(doc.len() - fed);
                    let gap = tok.space(n);
                    gap[..n].copy_from_slice(&doc[fed..fed + n]);
                    tok.commit(n);
                    fed += n;
                }
                continue;
            }
            TokenStep::Token => {}
        }
        match tok.token() {
            Token::StartTag(start) => {
                if depth <= max_depth as u32 {
                    events.push(Ev::Open(
                        start.name.to_string(),
                        depth as u16,
                        start.self_closing,
                    ));
                }
                if !start.self_closing {
                    depth += 1;
                }
            }
            Token::EndTag { .. } => {
                depth -= 1;
                if depth <= max_depth as u32 {
                    events.push(Ev::Close(depth as u16));
                }
            }
            _ => {}
        }
    }
    events
}

/// The scanner's view, with every offset checked against the document
/// bytes: `start` points at `<`, `tag_end` one past `>`, the name range
/// holds exactly the name, closes point at `</`.
fn scanner_events(doc: &[u8], max_depth: u16) -> Vec<Ev> {
    let outline = scan_boundaries(doc, max_depth).expect("generated document must scan");
    assert_eq!(doc[outline.root_open_end - 1], b'>');
    assert!(
        doc[outline.root_close_start..].starts_with(b"</") || doc[outline.root_close_start] == b'<',
        "root close offset must point at markup"
    );
    outline
        .events
        .iter()
        .map(|e| match *e {
            ScanEvent::Open(b) => {
                assert_eq!(doc[b.start], b'<', "boundary start must point at '<'");
                assert_eq!(doc[b.tag_end - 1], b'>', "tag_end must be one past '>'");
                assert_eq!(b.name_start, b.start + 1);
                let name = String::from_utf8(doc[b.name_start..b.name_end].to_vec()).unwrap();
                Ev::Open(name, b.depth, b.self_closing)
            }
            ScanEvent::Close { depth, start } => {
                assert!(doc[start..].starts_with(b"</"), "close must point at '</'");
                Ev::Close(depth)
            }
        })
        .collect()
}

#[test]
fn scanner_matches_tokenizer_depth_transitions_on_generated_docs() {
    let mut rng = XorShift(0x5CA_D1FF);
    for round in 0..300 {
        let doc = gen_doc(&mut rng);
        let doc = doc.as_bytes();
        for max_depth in [0u16, 1, 2, 5] {
            let scanned = scanner_events(doc, max_depth);
            // Chunked feeds re-pin the tokenizer's own split-invariance
            // while exercising entity/CDATA/comment edges landing on
            // chunk boundaries.
            for chunk in [1usize, 7, doc.len()] {
                let reference = tokenizer_events(doc, max_depth, chunk);
                assert_eq!(
                    scanned,
                    reference,
                    "round {round}, max_depth {max_depth}, chunk {chunk}:\n{}",
                    String::from_utf8_lossy(doc)
                );
            }
        }
    }
}

#[test]
fn scanner_matches_tokenizer_on_an_xmark_document() {
    let doc = br#"<?xml version="1.0"?><site><regions><namerica>
        <item id="item0"><name>gold &amp; silver</name>
        <description><![CDATA[<b>not markup</b>]]></description>
        <mailbox><mail from="a@b" to='c>d'/></mailbox></item>
        </namerica></regions><people><person id="person0">
        <name>A&#65;</name><!-- <address> omitted --></person></people></site>"#;
    for max_depth in [0u16, 1, 2, 3, 9] {
        assert_eq!(
            scanner_events(doc, max_depth),
            tokenizer_events(doc, max_depth, 11),
            "max_depth {max_depth}"
        );
    }
}
