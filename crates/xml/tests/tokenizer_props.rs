//! Property/fuzz tests for the tokenizer: arbitrary byte soup must never
//! panic, well-formed generated documents must always tokenize, and the
//! writer→tokenizer loop must preserve documents.

#![cfg(feature = "proptest")]
// Gated: requires the external `proptest` crate, unavailable in offline
// builds (see crates/shims/README.md).
use gcx_xml::{escape, Token, Tokenizer, TokenizerOptions, XmlWriter};
use proptest::prelude::*;

/// Random well-formed document rendered as a string.
fn doc(depth: u32) -> BoxedStrategy<String> {
    let tag = prop_oneof![Just("a"), Just("b-c"), Just("_x"), Just("ns:y")];
    let text = prop_oneof![
        Just("plain".to_string()),
        Just("1 < 2 & 3 > 0".to_string()),
        Just("ünïcodé ☃".to_string()),
        Just("]]>".to_string()),
        Just("\"quotes' everywhere\"".to_string()),
    ];
    let leaf = (tag, proptest::option::of(text)).prop_map(|(t, txt)| match txt {
        Some(x) => format!("<{t}>{}</{t}>", escape::escape_text(&x)),
        None => format!("<{t}/>"),
    });
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = prop::collection::vec(doc(depth - 1), 0..3);
    prop_oneof![
        2 => leaf,
        1 => inner.prop_map(|children| format!("<r>{}</r>", children.concat())),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn tokenizer_never_panics_on_byte_soup(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let mut t = Tokenizer::from_bytes(&bytes);
        // Drive to completion or first error; must not panic or loop.
        for _ in 0..1000 {
            match t.next_token() {
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => break,
            }
        }
    }

    #[test]
    fn tokenizer_never_panics_on_xmlish_soup(s in "[<>a-z=\"'/& !\\[\\]-]{0,120}") {
        let mut t = Tokenizer::from_str(&s);
        for _ in 0..1000 {
            match t.next_token() {
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => break,
            }
        }
    }

    #[test]
    fn well_formed_documents_always_tokenize(d in doc(3)) {
        let mut t = Tokenizer::from_str(&d);
        t.validate_to_end().unwrap_or_else(|e| panic!("{e}\n{d}"));
    }

    #[test]
    fn text_content_is_preserved(d in doc(3)) {
        // Concatenated text through the tokenizer == concatenated text
        // through a re-serialization cycle.
        fn all_text(s: &str) -> String {
            let mut t = Tokenizer::from_str(s);
            let mut out = String::new();
            while let Some(tok) = t.next_token().unwrap() {
                if let Token::Text(x) = tok {
                    out.push_str(&x);
                }
            }
            out
        }
        let mut w = XmlWriter::new(Vec::new());
        let mut t = Tokenizer::from_str(&d);
        while let Some(tok) = t.next_token().unwrap() {
            match tok {
                Token::StartTag(st) => {
                    let name = st.name.to_string();
                    let self_closing = st.self_closing;
                    w.start_element(&name).unwrap();
                    if self_closing {
                        w.end_element().unwrap();
                    }
                }
                Token::EndTag { .. } => w.end_element().unwrap(),
                Token::Text(x) => w.text(&x).unwrap(),
                _ => {}
            }
        }
        let round = String::from_utf8(w.finish().unwrap()).unwrap();
        prop_assert_eq!(all_text(&d), all_text(&round));
    }

    #[test]
    fn fragment_mode_accepts_what_strict_mode_accepts(d in doc(2)) {
        let opts = TokenizerOptions { allow_fragments: true, ..Default::default() };
        let mut t = Tokenizer::with_options(std::io::Cursor::new(d.as_bytes()), opts);
        t.validate_to_end().unwrap();
    }
}
