//! Golden tests pinning the reproduction to the paper's own artifacts:
//! the role table of §2, the rewritten running example, Figure 1's buffer
//! states, and the Figure 3 micro-document behaviour (including the
//! 23-node watermark).

use gcx::xmark::{microdoc_article_heavy, microdoc_book_heavy, queries};
use gcx::{CompiledQuery, EngineOptions};

#[test]
fn role_table_matches_paper_section_2() {
    let q = CompiledQuery::compile(queries::RUNNING_EXAMPLE).unwrap();
    assert_eq!(
        q.analysis.roles_listing(),
        "\
r1: /
r2: /bib
r3: /bib/*
r4: /bib/*/price[1]
r5: /bib/*/descendant-or-self::node()
r6: /bib/book
r7: /bib/book/title/descendant-or-self::node()
"
    );
}

#[test]
fn rewritten_query_matches_paper_section_2() {
    // The paper's rewritten query, modulo formatting: every signOff at its
    // preemption point. (We additionally emit signOff(/, r1) at query end,
    // which the paper leaves implicit.)
    let q = CompiledQuery::compile(queries::RUNNING_EXAMPLE).unwrap();
    let printed = q.analysis.rewritten.to_string();
    let must_contain = [
        "signOff($x, r3)",
        "signOff($x/price[1], r4)",
        "signOff($x/descendant-or-self::node(), r5)",
        "signOff($b, r6)",
        "signOff($b/title/descendant-or-self::node(), r7)",
        "signOff($bib, r2)",
        "signOff(/, r1)",
    ];
    // Order matters: the paper places them exactly in this sequence.
    let mut last = 0;
    for needle in must_contain {
        let pos = printed[last..]
            .find(needle)
            .unwrap_or_else(|| panic!("missing or out of order: {needle}\n{printed}"));
        last += pos;
    }
}

#[test]
fn figure1_buffer_states() {
    // Run the engine over the Figure 1 prefix with a timeline and check
    // the documented buffer evolution: 4 nodes buffered (bib, book, title,
    // author), then after the first loop's signOffs author+... only
    // book{r6} and title{r7} (+bib) remain.
    let doc = "<bib><book><title/><author/></book></bib>";
    let q = CompiledQuery::compile(queries::RUNNING_EXAMPLE).unwrap();
    let report = gcx::run(
        &q,
        &EngineOptions::gcx().with_timeline(1),
        doc.as_bytes(),
        std::io::sink(),
    )
    .unwrap();
    let tl = report.timeline.unwrap();
    // All four nodes buffered while the book subtree streams (Figure 1(a)).
    assert_eq!(tl.peak(), 4);
    assert_eq!(report.buffer.allocated, 4, "every node carries a role");
    assert_eq!(report.buffer.live, 0, "everything reclaimed by the end");
}

#[test]
fn figure3b_bounded_buffer_for_article_stream() {
    let q = CompiledQuery::compile(queries::RUNNING_EXAMPLE).unwrap();
    let report = gcx::run(
        &q,
        &EngineOptions::gcx().with_timeline(1),
        microdoc_article_heavy().as_bytes(),
        std::io::sink(),
    )
    .unwrap();
    assert_eq!(report.tokens, 82, "the paper's 82-token document");
    let tl = report.timeline.unwrap();
    // "articles are processed one at a time and memory consumption is
    // bounded": the paper's plot stays in single digits.
    assert!(
        tl.peak() <= 8,
        "bounded buffer expected, peak {}",
        tl.peak()
    );
    assert_eq!(report.buffer.live, 0);
}

#[test]
fn figure3c_accumulates_23_nodes() {
    let q = CompiledQuery::compile(queries::RUNNING_EXAMPLE).unwrap();
    let report = gcx::run(
        &q,
        &EngineOptions::gcx().with_timeline(1),
        microdoc_book_heavy().as_bytes(),
        std::io::sink(),
    )
    .unwrap();
    let tl = report.timeline.unwrap();
    // "When the closing tag of the bib-node is read, 23 nodes are buffered
    // in total."
    assert_eq!(tl.peak(), 23, "the paper's 23-node watermark");
    // And the staircase is monotone over the nine books: sample the buffer
    // at each book boundary (8 tokens per book child).
    let at = |token: u64| {
        tl.points
            .iter()
            .find(|&&(t, _)| t == token)
            .map(|&(_, l)| l)
            .unwrap()
    };
    for book in 1..9 {
        let here = at(1 + 8 * book); // after book k closed
        let next = at(1 + 8 * (book + 1));
        assert!(next >= here, "titles accumulate: {here} then {next}");
    }
    assert_eq!(report.buffer.live, 0);
}

#[test]
fn figure3_output_is_correct_too() {
    // Buffer plots aside, the query result itself: all children have
    // prices, so only book titles are emitted.
    let mut out = Vec::new();
    let q = CompiledQuery::compile(queries::RUNNING_EXAMPLE).unwrap();
    gcx::run(
        &q,
        &EngineOptions::gcx(),
        microdoc_book_heavy().as_bytes(),
        &mut out,
    )
    .unwrap();
    let out = String::from_utf8(out).unwrap();
    assert_eq!(out, format!("<r>{}</r>", "<title/>".repeat(9)));
}

#[test]
fn explain_mentions_preemption_points() {
    let q = CompiledQuery::compile(queries::RUNNING_EXAMPLE).unwrap();
    let text = q.explain();
    assert!(text.contains("Projection paths and roles"));
    assert!(text.contains("Rewritten query with signOff statements"));
}

#[test]
fn paper_example_against_dom_oracle() {
    for doc in [
        "<bib><book><title/><author/></book></bib>",
        &microdoc_article_heavy(),
        &microdoc_book_heavy(),
        "<bib/>",
        "<bib><article/><book><title>t</title></book></bib>",
    ] {
        let a = gcx::run_query(queries::RUNNING_EXAMPLE, doc).unwrap();
        let b = gcx::dom::run_query(queries::RUNNING_EXAMPLE, doc).unwrap();
        assert_eq!(a, b, "doc: {doc}");
    }
}
