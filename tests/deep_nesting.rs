//! Deep-nesting regression suite: document depth must never translate into
//! native stack depth. Every walk over document structure — the tokenizer's
//! well-formedness stack, the preprojector's open list, the buffer's
//! serialization/string-value/signOff walks, the writer's element stack and
//! the DOM oracle's traversals — is iterative, so a 100k-deep document
//! flows through every engine without overflowing the (typically 8MB)
//! thread stack, which the old recursive walks did at a few tens of
//! thousands of levels.

use gcx::{CompiledQuery, EngineOptions};

/// `<d><d>…x…</d></d>` with `depth` levels.
fn deep_doc(depth: usize) -> String {
    let mut s = String::with_capacity(depth * 7 + 1);
    for _ in 0..depth {
        s.push_str("<d>");
    }
    s.push('x');
    for _ in 0..depth {
        s.push_str("</d>");
    }
    s
}

fn run_engine(q: &CompiledQuery, opts: &EngineOptions, doc: &str) -> Vec<u8> {
    let mut out = Vec::new();
    gcx::run(q, opts, doc.as_bytes(), &mut out).expect("engine run");
    out
}

fn run_dom(query: &str, doc: &str) -> Vec<u8> {
    let q = gcx::query::compile(query).unwrap();
    let mut out = Vec::new();
    gcx::dom::run(&q, doc.as_bytes(), &mut out).expect("dom run");
    out
}

#[test]
fn hundred_k_deep_document_serializes_without_overflow() {
    const DEPTH: usize = 100_000;
    let doc = deep_doc(DEPTH);
    let query = "for $v in /d return $v";
    let q = CompiledQuery::compile(query).unwrap();
    // Full buffering: tokenizer → preprojector → buffer → serialize →
    // writer, all at 100k depth. (The GCX configuration additionally runs
    // per-node signOff accounting whose ancestor updates are O(depth) per
    // node by design; see the differential test below for that path.)
    let out = run_engine(&q, &EngineOptions::full_buffering(), &doc);
    assert_eq!(out.len(), doc.len());
    assert_eq!(
        out,
        doc.as_bytes(),
        "deep round-trip must be byte-identical"
    );
}

#[test]
fn hundred_k_deep_document_through_dom_oracle() {
    const DEPTH: usize = 100_000;
    let doc = deep_doc(DEPTH);
    let out = run_dom("for $v in /d return $v", &doc);
    assert_eq!(out, doc.as_bytes());
}

#[test]
fn hundred_k_deep_tokenizer_validates() {
    const DEPTH: usize = 100_000;
    let doc = deep_doc(DEPTH);
    let mut t = gcx::xml::Tokenizer::from_str(&doc);
    assert_eq!(t.validate_to_end().unwrap(), 2 * DEPTH as u64 + 1);
}

#[test]
fn deep_differential_gcx_vs_dom() {
    // The full GCX configuration (projection + signOffs + purging) against
    // the DOM oracle on a deep document. Depth is moderated because signOff
    // role accounting walks the ancestor chain per node (quadratic in
    // depth by design); the point here is agreement, not speed.
    const DEPTH: usize = 5_000;
    let doc = deep_doc(DEPTH);
    for query in [
        "for $v in /d return $v",
        "for $v in /d/d/d return $v/text()",
        "<n>{ count(/d//d) }</n>",
    ] {
        let q = CompiledQuery::compile(query).unwrap();
        let gcx_out = run_engine(&q, &EngineOptions::gcx(), &doc);
        let full_out = run_engine(&q, &EngineOptions::full_buffering(), &doc);
        let dom_out = run_dom(query, &doc);
        assert_eq!(gcx_out, dom_out, "gcx vs dom on {query}");
        assert_eq!(full_out, dom_out, "full-buffering vs dom on {query}");
    }
}
