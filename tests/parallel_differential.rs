//! Partition-parallel differential suite: `gcx_par::run_parallel`'s
//! contract is that the merged output is **byte-identical** to a serial
//! run at every thread count — the parallel path for shard-safe queries,
//! the two-phase path for whole-document counts, and an honest serial
//! fallback for everything else (Q8's cross-shard join, the running
//! example's root binding). The serial reference itself is driven
//! through seeded chunk splits and 1-byte feeds, so the comparison also
//! re-pins the sans-IO core's chunking invariance.
//!
//! Buffer contract: for queries that actually shard, no shard's buffer
//! peak may exceed the serial run's peak — partitioning must never
//! *create* buffering the serial evaluation avoided.

use gcx::par::{run_parallel, ParOptions, ShardPath};
use gcx::xmark::{generate_string, queries, XmarkConfig};
use gcx::{CompiledQuery, EngineOptions, RunReport};

fn xmark(kb: u64, seed: u64) -> String {
    let mut cfg = XmarkConfig::sized(kb * 1024);
    cfg.seed = seed;
    generate_string(&cfg)
}

/// Push `doc` through an `EvalSession` cut at `splits` (ascending offsets).
fn run_split(q: &CompiledQuery, doc: &[u8], splits: &[usize]) -> (Vec<u8>, RunReport) {
    let mut session = q.session(&EngineOptions::gcx());
    let mut from = 0;
    for &cut in splits {
        let cut = cut.min(doc.len());
        session.feed(&doc[from..cut]).expect("feed");
        from = cut;
    }
    session.feed(&doc[from..]).expect("final feed");
    let report = session.finish().expect("finish");
    let mut out = Vec::new();
    session.take_output(&mut out).expect("drain");
    (out, report)
}

/// Deterministic split-point generator (xorshift64*, no external deps).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn splits(&mut self, len: usize, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).map(|_| (self.next() as usize) % (len + 1)).collect();
        v.sort_unstable();
        v
    }
}

/// Queries that must actually take a partitioned path on XMark input.
const MUST_SHARD: &[&str] = &[
    "Q1", "Q6", "Q13", "Q20", "Q2", "Q3", "Q14", "Q17", "Q19", "Q6_COUNT",
];
/// Queries that must fall back serially (cross-shard join).
const MUST_FALL_BACK: &[&str] = &["Q8"];

#[test]
fn all_paper_queries_all_thread_counts() {
    let doc = xmark(96, 0x6C7867);
    let doc = doc.as_bytes();
    let mut rng = XorShift(0x9E3779B97F4A7C15);
    for (name, qtext) in queries::paper_queries() {
        let q = CompiledQuery::compile(qtext).expect("compile");
        // Serial reference under seeded chunk splits: chunking-invariant
        // by the PR 5 contract, and the baseline for every thread count.
        let reference = run_split(&q, doc, &rng.splits(doc.len(), 23));
        for threads in [1usize, 2, 4, 8] {
            let outcome = run_parallel(
                &q,
                &EngineOptions::gcx(),
                &ParOptions::with_threads(threads),
                doc,
            )
            .expect("run_parallel");
            assert_eq!(
                outcome.output, reference.0,
                "{name} @ {threads} threads: parallel output differs from serial"
            );
            if threads == 1 {
                assert_eq!(outcome.path, ShardPath::Serial);
                assert_eq!(
                    outcome.report.tokens, reference.1.tokens,
                    "{name}: serial-path token count drifted"
                );
            }
            if threads > 1 && MUST_SHARD.contains(&name) {
                assert_ne!(
                    outcome.path,
                    ShardPath::Serial,
                    "{name} @ {threads} threads: expected a partitioned path, fell back: {:?}",
                    outcome.fallback
                );
                assert!(outcome.shards > 1, "{name}: partitioned but single shard");
                // Partitioning must not create buffering: every shard
                // stays within the serial peak.
                for (i, sr) in outcome.shard_reports.iter().enumerate() {
                    assert!(
                        sr.buffer.peak_live <= reference.1.buffer.peak_live,
                        "{name} @ {threads} threads: shard {i} peak {} exceeds serial peak {}",
                        sr.buffer.peak_live,
                        reference.1.buffer.peak_live
                    );
                    assert!(
                        sr.buffer.peak_live_bytes <= reference.1.buffer.peak_live_bytes,
                        "{name} @ {threads} threads: shard {i} byte peak {} exceeds serial {}",
                        sr.buffer.peak_live_bytes,
                        reference.1.buffer.peak_live_bytes
                    );
                }
                // Shard token counts sum to the aggregate (preludes are
                // re-tokenized per shard, so the sum exceeds serial).
                let sum: u64 = outcome.shard_reports.iter().map(|r| r.tokens).sum();
                assert_eq!(outcome.report.tokens, sum);
                assert!(sum >= reference.1.tokens);
            }
            if threads > 1 && MUST_FALL_BACK.contains(&name) {
                assert_eq!(
                    outcome.path,
                    ShardPath::Serial,
                    "{name}: a cross-shard join must not take a partitioned path"
                );
                assert!(
                    outcome.fallback.is_some(),
                    "{name}: fallback without reason"
                );
                // No output or peak change on the fallback path.
                assert_eq!(
                    outcome.report.buffer.peak_live,
                    reference.1.buffer.peak_live
                );
                assert_eq!(outcome.report.tokens, reference.1.tokens);
            }
        }
    }
}

#[test]
fn q6_count_takes_two_phase_path() {
    let doc = xmark(64, 7);
    let q = CompiledQuery::compile(queries::Q6_COUNT).expect("compile");
    let outcome = run_parallel(
        &q,
        &EngineOptions::gcx(),
        &ParOptions::with_threads(4),
        doc.as_bytes(),
    )
    .expect("run_parallel");
    assert_eq!(outcome.path, ShardPath::TwoPhase);
    let reference = run_split(&q, doc.as_bytes(), &[]);
    assert_eq!(outcome.output, reference.0);
}

#[test]
fn running_example_falls_back_via_guard() {
    // `for $bib in /bib` binds a child of the root that exists once: the
    // guard rejects every split (and the body has two output-producing
    // loops), so the run degrades to serial with no behavior change.
    let doc = "<bib><book><title>t1</title><price>5</price></book>\
               <book><title>t2</title></book></bib>";
    let q = CompiledQuery::compile(queries::RUNNING_EXAMPLE).expect("compile");
    let outcome = run_parallel(
        &q,
        &EngineOptions::gcx(),
        &ParOptions::with_threads(4),
        doc.as_bytes(),
    )
    .expect("run_parallel");
    assert_eq!(outcome.path, ShardPath::Serial);
    assert!(outcome.fallback.is_some());
    let reference = run_split(&q, doc.as_bytes(), &[]);
    assert_eq!(outcome.output, reference.0);
}

/// A chained query whose *intermediate* spine level can bind nested
/// elements: `/r//a` selects both an `<a>` and an `<a>` inside it. Under
/// XQuery's per-binding grouping (what the dom/full engines produce),
/// cutting inside an outer binding would splice the nested binding's
/// group into the middle of the outer's; the streaming engine currently
/// flattens nested groups, which masks the division byte-wise, but shard
/// safety must hold regardless of that attribution — so the analysis
/// guards the descendant spine prefix itself.
const NESTED_SPINE: &str = "for $x in /r//a return for $y in $x//b return $y/t";

/// `count` top-level `<a>` blocks. Each block's outer binding owns `<b>`s
/// of its own *and* two nested `<a>` bindings, padded so that almost any
/// cut inside a block lands between a nested binding's `<b>` and later
/// outer-binding material — exactly the shape whose groups a mid-block
/// split would reorder.
fn nested_doc(count: usize) -> String {
    let pad = format!("<p>{}</p>", "x".repeat(180));
    let mut doc = String::from("<r>");
    for i in 0..count {
        doc.push_str(&format!(
            "<a><b><t>{i}.0</t></b>\
             <a><b><t>{i}.1</t></b>{pad}</a>\
             <a><b><t>{i}.2</t></b>{pad}</a>\
             <b><t>{i}.3</t></b></a>"
        ));
    }
    doc.push_str("</r>");
    doc
}

#[test]
fn nested_intermediate_bindings_shard_only_at_safe_boundaries() {
    // The descendant spine prefix `/r//a` is a guard of its own: every
    // candidate split inside an `<a>` is vetoed, splits land between
    // top-level blocks, and the merge stays byte-identical to serial.
    let q = CompiledQuery::compile(NESTED_SPINE).expect("compile");
    let doc = nested_doc(64);
    let doc = doc.as_bytes();
    let reference = run_split(&q, doc, &[]);
    for threads in [2usize, 4, 8] {
        let outcome = run_parallel(
            &q,
            &EngineOptions::gcx(),
            &ParOptions::with_threads(threads),
            doc,
        )
        .expect("run_parallel");
        assert_eq!(
            outcome.output, reference.0,
            "@ {threads} threads: a split divided a nested spine binding"
        );
        // Whole blocks are still safe to distribute: the veto must not
        // degrade Q6-style sharding into a blanket serial fallback.
        assert_eq!(
            outcome.path,
            ShardPath::Parallel,
            "@ {threads} threads: fell back: {:?}",
            outcome.fallback
        );
        assert!(outcome.shards > 1);
    }
}

#[test]
fn nested_bindings_with_no_safe_boundary_fall_back() {
    // One outer `<a>` holds the whole document: every candidate split
    // sits inside a divisible `/r//a` binding, so the guard rejects them
    // all and the run degrades to serial with no output change. This is
    // the regression tripwire for the interior-prefix guard: without it
    // the splitter happily cuts through nested spine bindings.
    let q = CompiledQuery::compile(NESTED_SPINE).expect("compile");
    let mut doc = String::from("<r><a>");
    for i in 0..32 {
        doc.push_str(&format!(
            "<a><b><t>{i}.1</t></b><b><t>{i}.2</t></b></a><b><t>{i}.3</t></b>"
        ));
    }
    doc.push_str("</a></r>");
    let doc = doc.as_bytes();
    let reference = run_split(&q, doc, &[]);
    let outcome = run_parallel(&q, &EngineOptions::gcx(), &ParOptions::with_threads(4), doc)
        .expect("run_parallel");
    assert_eq!(
        outcome.path,
        ShardPath::Serial,
        "no split point avoids dividing a nested binding"
    );
    assert!(outcome.fallback.is_some());
    assert_eq!(outcome.output, reference.0);
}

#[test]
fn parallel_is_deterministic_across_runs() {
    let doc = xmark(48, 21);
    let q = CompiledQuery::compile(queries::Q1).expect("compile");
    let a = run_parallel(
        &q,
        &EngineOptions::gcx(),
        &ParOptions::with_threads(4),
        doc.as_bytes(),
    )
    .expect("run");
    let b = run_parallel(
        &q,
        &EngineOptions::gcx(),
        &ParOptions::with_threads(4),
        doc.as_bytes(),
    )
    .expect("run");
    assert_eq!(a.output, b.output);
    assert_eq!(a.shards, b.shards);
    assert_eq!(a.report.tokens, b.report.tokens);
    assert_eq!(a.report.buffer.peak_live, b.report.buffer.peak_live);
    assert_eq!(a.report.buffer.allocated, b.report.buffer.allocated);
}

#[test]
fn one_byte_feeds_match_parallel_merge() {
    // The serial reference at the pathological extreme: 1-byte feeds.
    let doc = xmark(4, 3);
    let doc = doc.as_bytes();
    for (name, qtext) in [("Q1", queries::Q1), ("Q6", queries::Q6)] {
        let q = CompiledQuery::compile(qtext).expect("compile");
        let splits: Vec<usize> = (1..doc.len()).collect();
        let reference = run_split(&q, doc, &splits);
        let outcome = run_parallel(&q, &EngineOptions::gcx(), &ParOptions::with_threads(8), doc)
            .expect("run_parallel");
        assert_eq!(
            outcome.output, reference.0,
            "{name}: 1-byte-fed serial differs from parallel merge"
        );
    }
}

#[test]
fn telemetry_aggregates_deterministically() {
    let doc = xmark(32, 5);
    let q = CompiledQuery::compile(queries::Q6).expect("compile");
    let mut opts = EngineOptions::gcx();
    opts.telemetry = true;
    let outcome = run_parallel(&q, &opts, &ParOptions::with_threads(4), doc.as_bytes())
        .expect("run_parallel");
    assert_ne!(outcome.path, ShardPath::Serial);
    let obs = outcome.report.obs.as_ref().expect("aggregated obs report");
    let per_shard: u64 = outcome
        .shard_reports
        .iter()
        .map(|r| r.obs.as_ref().expect("shard obs").purge_batch.count())
        .sum();
    assert_eq!(obs.purge_batch.count(), per_shard);
    let mut serial_out = Vec::new();
    gcx::run(&q, &opts, doc.as_bytes(), &mut serial_out).expect("serial");
    assert_eq!(outcome.output, serial_out);
}
