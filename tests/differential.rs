//! Differential property testing: the central correctness claim of the
//! paper is that active garbage collection **never corrupts the result** —
//! signOffs "must not be issued too early". We check it by construction:
//! on randomized documents and queries, four independent evaluation
//! strategies must produce byte-identical output:
//!
//! 1. GCX (projection + active GC),
//! 2. projection only,
//! 3. full buffering (streaming evaluator, no projection, no GC),
//! 4. the independent DOM evaluator (`gcx-dom`).
//!
//! Additionally: the GCX buffer must drain to zero (role/signOff balance)
//! and the peak-memory hierarchy gcx ≤ projection-only ≤ full-buffering
//! must hold.

#![cfg(feature = "proptest")]
// Gated: requires the external `proptest` crate, unavailable in offline
// builds (see crates/shims/README.md).
use gcx::{CompiledQuery, EngineOptions};
use proptest::prelude::*;

// ---- random documents -------------------------------------------------------

/// A small element tree over a fixed tag alphabet, with attributes and text.
#[derive(Debug, Clone)]
struct TestDoc {
    xml: String,
}

fn tag() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("a"),
        Just("b"),
        Just("c"),
        Just("item"),
        Just("name"),
        Just("price"),
    ]
}

fn text() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("x".to_string()),
        Just("42".to_string()),
        Just("7".to_string()),
        Just("hello world".to_string()),
        Just("a<b&c".to_string()),
    ]
}

/// Recursive element strategy rendered directly to XML text.
fn element(depth: u32) -> BoxedStrategy<String> {
    let leaf = (
        tag(),
        proptest::option::of(text()),
        proptest::option::of(0u32..100),
    )
        .prop_map(|(t, txt, attr)| {
            let attr = attr.map(|v| format!(" id=\"v{v}\"")).unwrap_or_default();
            match txt {
                Some(x) => format!("<{t}{attr}>{}</{t}>", gcx::xml::escape::escape_text(&x)),
                None => format!("<{t}{attr}/>"),
            }
        });
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = prop::collection::vec(element(depth - 1), 0..4);
    prop_oneof![
        3 => leaf,
        2 => (tag(), proptest::option::of(0u32..100), inner).prop_map(|(t, attr, children)| {
            let attr = attr.map(|v| format!(" id=\"v{v}\"")).unwrap_or_default();
            format!("<{t}{attr}>{}</{t}>", children.concat())
        }),
    ]
    .boxed()
}

fn document() -> impl Strategy<Value = TestDoc> {
    element(3).prop_map(|root| TestDoc { xml: root })
}

// ---- random queries ----------------------------------------------------------

/// Queries generated over the same alphabet: nested loops, conditions with
/// exists/comparisons, node and text output, attribute access.
fn query() -> impl Strategy<Value = String> {
    let step = prop_oneof![
        Just("a"),
        Just("b"),
        Just("c"),
        Just("item"),
        Just("name"),
        Just("price"),
        Just("*"),
    ];
    let axis = prop_oneof![2 => Just("/"), 1 => Just("//")];
    let path2 = (
        axis.clone(),
        step.clone(),
        proptest::option::of((axis.clone(), step.clone())),
    )
        .prop_map(|(a1, s1, rest)| {
            let mut p = format!("{a1}{s1}");
            if let Some((a2, s2)) = rest {
                p.push_str(&format!("{a2}{s2}"));
            }
            p
        });
    // Output expression for the inner body.
    let body = prop_oneof![
        Just("$x".to_string()),
        Just("$x/text()".to_string()),
        Just("$x/@id".to_string()),
        Just("<hit/>".to_string()),
        Just("'lit'".to_string()),
    ];
    let cond = prop_oneof![
        Just("exists($x/price)".to_string()),
        Just("not(exists($x/name))".to_string()),
        Just("$x/@id = 'v7'".to_string()),
        Just("$x/price = 42".to_string()),
        Just("$x/name = $x/price".to_string()),
        Just("$x/price < 50 or exists($x/@id)".to_string()),
        Just("true()".to_string()),
    ];
    (path2, proptest::option::of(cond), body).prop_map(|(p, c, b)| match c {
        Some(c) => format!("<out>{{ for $x in {p} return if ({c}) then {b} else () }}</out>"),
        None => format!("<out>{{ for $x in {p} return {b} }}</out>"),
    })
}

// ---- the differential harness --------------------------------------------------

fn run_cfg(q: &CompiledQuery, opts: &EngineOptions, doc: &str) -> (String, gcx::RunReport) {
    let mut out = Vec::new();
    let report = gcx::run(q, opts, doc.as_bytes(), &mut out)
        .unwrap_or_else(|e| panic!("engine failed: {e}"));
    (String::from_utf8(out).unwrap(), report)
}

fn check_all_engines_agree(query_text: &str, doc: &str) {
    // One compiled artifact: the three streaming configurations execute
    // the same lowered program (gcx-ir) under different execution
    // options; the DOM oracle interprets the normalized AST out of the
    // same `CompiledQuery` with independent code.
    let q = CompiledQuery::compile(query_text).expect("query compiles");
    let (gcx_out, gcx_rep) = run_cfg(&q, &EngineOptions::gcx(), doc);
    let (proj_out, proj_rep) = run_cfg(&q, &EngineOptions::projection_only(), doc);
    let (full_out, full_rep) = run_cfg(&q, &EngineOptions::full_buffering(), doc);
    let mut dom_out = Vec::new();
    gcx::dom::run(&q.query, doc.as_bytes(), &mut dom_out).expect("dom run");
    let dom_out = String::from_utf8(dom_out).unwrap();

    assert_eq!(
        gcx_out, proj_out,
        "gcx vs projection-only\nquery: {query_text}\ndoc: {doc}"
    );
    assert_eq!(
        gcx_out, full_out,
        "gcx vs full-buffering\nquery: {query_text}\ndoc: {doc}"
    );
    assert_eq!(
        gcx_out, dom_out,
        "gcx vs dom oracle\nquery: {query_text}\ndoc: {doc}"
    );

    assert_eq!(
        gcx_rep.buffer.live, 0,
        "GCX buffer must drain (role balance)\nquery: {query_text}\ndoc: {doc}"
    );
    assert!(gcx_rep.buffer.peak_live <= proj_rep.buffer.peak_live);
    assert!(proj_rep.buffer.peak_live <= full_rep.buffer.peak_live);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 192,
        ..ProptestConfig::default()
    })]

    #[test]
    fn engines_agree_on_random_docs_fixed_queries(doc in document()) {
        // A fixed battery of queries exercising every construct.
        const QUERIES: &[&str] = &[
            "<r>{ for $x in /a return $x }</r>",
            "<r>{ for $x in /a/* return if (exists($x/price)) then $x/name else $x/@id }</r>",
            "for $x in //item return <i>{ $x/name, $x/price }</i>",
            "for $x in //a//b return $x/text()",
            "for $x in /a return for $y in $x/b return if ($y/@id = $x/@id) then 'eq' else 'ne'",
            "<r>{ for $x in /a/b[1] return $x, for $y in /a/b return $y/@id }</r>",
            "if (exists(//price)) then <has/> else <not/>",
            "for $x in //name return if ($x/text() = 'hello world') then $x else ()",
            "<n>{ count(//item) }</n>, <s>{ sum(//price) }</s>",
            "for $x in /a return if ($x//price >= 42 and not(exists($x/c))) then $x else ()",
        ];
        for q in QUERIES {
            check_all_engines_agree(q, &doc.xml);
        }
    }

    #[test]
    fn engines_agree_on_random_queries_random_docs(q in query(), doc in document()) {
        check_all_engines_agree(&q, &doc.xml);
    }
}

// The canonical 11-query battery (the same one the bench harnesses
// sweep), shared via gcx-xmark so the lists cannot drift apart.
use gcx::xmark::queries::paper_queries;

proptest! {
    // The XMark sweep is expensive (11 queries × 4 engines per case), so
    // it runs fewer cases than the micro-doc suites.
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Random XMark microdocs × all 11 paper queries: the IR-executing
    /// engine must stay byte-identical to the DOM oracle under gcx,
    /// projection-only and full-buffering options (and the buffer-peak
    /// hierarchy must hold).
    #[test]
    fn xmark_microdocs_agree_across_engines_and_oracle(
        seed in proptest::num::u64::ANY,
        kb in 4u64..48,
    ) {
        let mut cfg = gcx::xmark::XmarkConfig::sized(kb * 1024);
        cfg.seed = seed;
        let doc = gcx::xmark::generate_string(&cfg);
        // Failure messages inside carry the full query text, which
        // identifies the paper query unambiguously.
        for (_name, text) in paper_queries() {
            check_all_engines_agree(text, &doc);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 192,
        ..ProptestConfig::default()
    })]

    #[test]
    fn tokenizer_roundtrip_via_writer(doc in document()) {
        // Parse the document, re-serialize it, parse again: the two streams
        // must describe the same document. Token streams are canonicalized
        // (self-closing tags expand to start+end) because the writer is
        // allowed to collapse `<a></a>` into `<a/>`.
        use gcx::xml::{Token, Tokenizer, XmlWriter};
        fn tokens(s: &str) -> Vec<String> {
            let mut t = Tokenizer::from_str(s);
            let mut out = Vec::new();
            while let Some(tok) = t.next_token().unwrap() {
                match tok {
                    Token::StartTag(st) => {
                        let attrs: Vec<(String, String)> = st
                            .attrs
                            .iter()
                            .map(|a| (a.name.to_string(), a.value.to_string()))
                            .collect();
                        out.push(format!("start {} {attrs:?}", st.name));
                        if st.self_closing {
                            out.push(format!("end {}", st.name));
                        }
                    }
                    Token::EndTag { name } => out.push(format!("end {name}")),
                    Token::Text(x) => out.push(format!("text {x}")),
                    _ => {}
                }
            }
            out
        }
        // Re-serialize via the writer.
        let mut w = XmlWriter::new(Vec::new());
        let mut t = Tokenizer::from_str(&doc.xml);
        while let Some(tok) = t.next_token().unwrap() {
            match tok {
                Token::StartTag(s) => {
                    let name = s.name.to_string();
                    w.start_element(&name).unwrap();
                    for a in &s.attrs {
                        w.attribute(a.name, &a.value).unwrap();
                    }
                    if s.self_closing {
                        w.end_element().unwrap();
                    }
                }
                Token::EndTag { .. } => w.end_element().unwrap(),
                Token::Text(x) => w.text(&x).unwrap(),
                _ => {}
            }
        }
        let rewritten = String::from_utf8(w.finish().unwrap()).unwrap();
        prop_assert_eq!(tokens(&doc.xml), tokens(&rewritten), "rewritten: {}", rewritten);
    }
}
