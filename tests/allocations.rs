//! Allocation-discipline assertions for the hot path, built on the
//! `gcx-memtrack` global allocator's event counter.
//!
//! The claim under test: after warm-up, the token→buffer path — tokenizer,
//! projection NFA, buffer append/purge — performs **O(1) allocations
//! total**, i.e. ≈ 0 per token. The test measures the same pipeline over a
//! document and over one twice its size; the fixed setup cost cancels and
//! the difference bounds the steady-state allocation rate.
//!
//! Everything runs inside a single `#[test]` because the allocator's
//! counters are process-global — parallel test threads would pollute the
//! deltas.

use gcx::core::buffer::{AttrBuf, BufferTree, NodeId, Ordinals};
use gcx::core::stream::Preprojector;
use gcx::projection::{analyze, CompiledPaths, StreamMatcher};
use gcx::query::ast::RoleId;
use gcx::xml::{SymbolTable, Tokenizer};

#[global_allocator]
static ALLOC: gcx::memtrack::TrackingAllocator = gcx::memtrack::TrackingAllocator::new();

/// An XMark-ish flat document: `items` repeated item elements.
fn item_doc(items: usize) -> String {
    let mut s = String::with_capacity(items * 64 + 16);
    s.push_str("<site>");
    for i in 0..items {
        s.push_str(&format!(
            "<item id=\"i{}\"><name>n{}</name><price>{}</price></item>",
            i,
            i,
            i % 97
        ));
    }
    s.push_str("</site>");
    s
}

/// Allocation events consumed by a full tokenizer validation pass.
fn tokenize_allocs(doc: &str) -> u64 {
    let before = gcx::memtrack::total_allocs();
    let mut t = Tokenizer::from_str(doc);
    t.validate_to_end().unwrap();
    gcx::memtrack::total_allocs() - before
}

/// Allocation events consumed by a full preprojector pass (tokenizer +
/// projection NFA + buffer appends and purges). The query's projection
/// path keeps every `item` speculatively and purges it at its end tag —
/// the steady-state append/purge cycle.
fn preproject_allocs(doc: &str) -> u64 {
    let before = gcx::memtrack::total_allocs();
    let q = gcx::query::compile("for $a in /site/item/zzz return 'x'").unwrap();
    let a = analyze(&q);
    let mut symbols = SymbolTable::new();
    let compiled = CompiledPaths::compile(&a.roles, &mut symbols);
    let (matcher, _) = StreamMatcher::new(&compiled);
    let mut buf = BufferTree::new(true);
    let mut pre = Preprojector::new(Tokenizer::from_str(doc), matcher, true, None);
    while pre.advance(&mut buf, &mut symbols).unwrap() {}
    assert_eq!(buf.stats().live, 0, "speculative items must all purge");
    assert!(buf.stats().purged as usize >= doc.matches("<item").count());
    gcx::memtrack::total_allocs() - before
}

#[test]
fn steady_state_token_loop_allocates_o1() {
    // Build both documents up front so their construction cost is not
    // measured.
    let small = item_doc(2_000);
    let large = item_doc(4_000);

    // Warm up (first-touch effects like lazy statics).
    tokenize_allocs(&small);
    preproject_allocs(&small);

    // Tokenizer alone: doubling the input must not increase allocations
    // beyond a constant (window management is size-independent).
    let t_small = tokenize_allocs(&small);
    let t_large = tokenize_allocs(&large);
    assert!(
        t_large <= t_small + 64,
        "tokenizer steady state must be allocation-free: \
         {t_small} allocs for {} tokens vs {t_large} for twice as many",
        2_000 * 8 + 2
    );

    // Tokenizer + NFA + buffer append/purge: same bound. 2k extra items ×
    // (1 element appended and purged + 2 subtrees skipped) ≈ 0 allocations.
    let p_small = preproject_allocs(&small);
    let p_large = preproject_allocs(&large);
    assert!(
        p_large <= p_small + 64,
        "preprojector steady state must be allocation-free: \
         {p_small} allocs vs {p_large} for twice the document"
    );

    // Direct buffer churn: append (with attributes, roles and text),
    // close, sign off, purge — after warm-up the pools absorb everything.
    let mut symbols = SymbolTable::new();
    let item = symbols.intern("item");
    let id_attr = symbols.intern("id");
    let role = RoleId(3);
    let mut buf = BufferTree::new(true);
    let mut attrs = AttrBuf::new();
    let cycle = |buf: &mut BufferTree, attrs: &mut AttrBuf| {
        attrs.clear();
        attrs.push(id_attr, "person0");
        let n =
            buf.append_element_with_attrs(NodeId::ROOT, item, attrs, &[(role, 1)], Ordinals::FIRST);
        buf.append_text(n, "some text content", &[(role, 1)], Ordinals::FIRST);
        buf.close(n);
        buf.decrement_role(n, role, 1);
        // The text node still holds a role instance; dropping it purges
        // the whole item subtree.
        let t = buf.first_child(n).expect("text child");
        buf.decrement_role(t, role, 1);
    };
    for _ in 0..64 {
        cycle(&mut buf, &mut attrs); // warm-up: populate the pools
    }
    let before = gcx::memtrack::total_allocs();
    for _ in 0..10_000 {
        cycle(&mut buf, &mut attrs);
    }
    let churn = gcx::memtrack::total_allocs() - before;
    assert_eq!(buf.stats().live, 0);
    assert!(
        churn <= 64,
        "10k append/purge cycles after warm-up must allocate ~nothing, saw {churn}"
    );
}
