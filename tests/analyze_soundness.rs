//! Differential soundness of the static streamability classifier
//! (`gcx-analyze`): the class assigned *before any data arrives* must
//! dominate the buffering the engine *actually does*, for every paper
//! query, document size and chunking.
//!
//! Two directions, one implication:
//!
//! * a `Constant`/`PerItem` verdict promises the buffer peak does not
//!   scale with document size — so an 8x larger document must not grow
//!   the measured `peak_live` beyond noise;
//! * contrapositively, a query whose measured peak *does* scale must
//!   carry a `Subtree` or `Document` class (the classifier may be loose,
//!   never tight).
//!
//! The classes themselves are pinned exactly, so a classifier change
//! that silently loosens everything to `Document` fails too.

use gcx::analyze::{analyze_program, StreamClass};
use gcx::schema::Dtd;
use gcx::xmark::{generate_string, queries, XmarkConfig};
use gcx::{CompiledQuery, EngineOptions};

fn xmark(kb: u64) -> String {
    generate_string(&XmarkConfig::sized(kb * 1024))
}

/// Deterministic split-point generator (xorshift64*, no external deps).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn splits(&mut self, len: usize, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).map(|_| (self.next() as usize) % (len + 1)).collect();
        v.sort_unstable();
        v
    }
}

/// Feed `doc` cut at `splits`, return the buffer's `peak_live`.
fn peak_split(q: &CompiledQuery, doc: &[u8], splits: &[usize]) -> u64 {
    let mut session = q.session(&EngineOptions::gcx());
    let mut from = 0;
    for &cut in splits {
        let cut = cut.min(doc.len());
        session.feed(&doc[from..cut]).expect("feed");
        from = cut;
    }
    session.feed(&doc[from..]).expect("final feed");
    let report = session.finish().expect("finish");
    report.buffer.peak_live
}

/// Worst observed peak across a whole-document feed and two seeded
/// chunkings — the static verdict has to hold for all of them.
fn worst_peak(q: &CompiledQuery, doc: &[u8], rng: &mut XorShift) -> u64 {
    let mut worst = peak_split(q, doc, &[]);
    for n in [3usize, 17] {
        worst = worst.max(peak_split(q, doc, &rng.splits(doc.len(), n)));
    }
    worst
}

/// The expected class of every paper query. Q8 buffers both join sides
/// (`Document`); Q6_COUNT counts a whole document region (`Subtree`);
/// everything else streams item by item.
const EXPECTED: &[(&str, StreamClass)] = &[
    ("Q1", StreamClass::PerItem),
    ("Q6", StreamClass::PerItem),
    ("Q8", StreamClass::Document),
    ("Q13", StreamClass::PerItem),
    ("Q20", StreamClass::PerItem),
    ("Q2", StreamClass::PerItem),
    ("Q3", StreamClass::PerItem),
    ("Q14", StreamClass::PerItem),
    ("Q17", StreamClass::PerItem),
    ("Q19", StreamClass::PerItem),
    ("Q6_COUNT", StreamClass::Subtree),
];

fn expected_class(name: &str) -> StreamClass {
    EXPECTED
        .iter()
        .find(|&&(n, _)| n == name)
        .map(|&(_, c)| c)
        .unwrap_or_else(|| panic!("no expected class for {name}"))
}

#[test]
fn static_class_dominates_observed_peak_growth() {
    let small = xmark(64);
    let large = xmark(512);
    let xmark_dtd = Dtd::xmark();
    let mut rng = XorShift(0x9E3779B97F4A7C15);
    for (name, qtext) in queries::paper_queries() {
        let q = CompiledQuery::compile(qtext).expect("compile");
        let a = analyze_program(&q.program, None);
        assert_eq!(a.class, expected_class(name), "{name}: class drifted");

        // The DTD can only tighten, and only soundly: re-check dominance
        // below against whichever class is tighter.
        let with_dtd = analyze_program(&q.program, Some(&xmark_dtd)).class;
        assert!(
            with_dtd <= a.class,
            "{name}: DTD loosened {:?} -> {with_dtd:?}",
            a.class
        );

        let p_small = worst_peak(&q, small.as_bytes(), &mut rng);
        let p_large = worst_peak(&q, large.as_bytes(), &mut rng);
        let grows = p_large > p_small.max(8) * 2;
        for class in [a.class, with_dtd] {
            if class <= StreamClass::PerItem {
                // 8x the input must not move a statically-bounded peak
                // beyond entity-size noise.
                assert!(
                    !grows,
                    "{name}: classified {class:?} but peak grew {p_small} -> {p_large} on 8x input"
                );
            }
        }
        if grows {
            // Contrapositive, stated directly so a regression report
            // names the right contract.
            assert!(
                a.class >= StreamClass::Subtree,
                "{name}: measured peak scales ({p_small} -> {p_large}) \
                 but the static class is {:?}",
                a.class
            );
        }
    }
}

#[test]
fn document_class_queries_report_why() {
    // Every Document verdict must carry at least one warning-severity
    // lint naming the construct responsible — the admission policy's 422
    // body and the shard fallback reason are built from it.
    for (name, qtext) in queries::paper_queries() {
        let q = CompiledQuery::compile(qtext).expect("compile");
        let a = analyze_program(&q.program, None);
        if a.class == StreamClass::Document {
            assert!(
                a.lints
                    .iter()
                    .any(|l| l.severity == gcx::analyze::Severity::Warning),
                "{name}: Document class with no warning lint"
            );
        }
    }
}
