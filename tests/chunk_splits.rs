//! Chunk-boundary differential suite for the sans-IO engine.
//!
//! The push-driven `EvalSession` promises that *how* the input bytes are
//! chunked is invisible: outputs, token counts and buffer peaks are
//! bit-identical to a single-shot [`gcx::run`] no matter where the feed
//! boundaries land — including boundaries inside a tag, inside a
//! multi-byte UTF-8 sequence and inside a CDATA section. This suite pins
//! that claim over the paper's micro documents and all 11 paper queries
//! on a generated XMark document:
//!
//! * every 2-way split point of each micro document (deterministic,
//!   exhaustive — covers mid-tag and mid-entity boundaries by sweep);
//! * 1-byte chunks (every boundary at once);
//! * seeded random multi-way splits;
//! * handpicked documents with multi-byte UTF-8 and CDATA, split at every
//!   byte;
//! * (feature `proptest`) randomized split vectors over randomized
//!   chunkings.

use gcx::{CompiledQuery, EngineOptions, RunReport};
use gcx_xmark::queries::paper_queries;
use gcx_xmark::{microdoc, microdoc_article_heavy, microdoc_book_heavy, MicroKind};

/// Single-shot oracle through the blocking wrapper.
fn oracle(q: &CompiledQuery, doc: &[u8]) -> (Vec<u8>, RunReport) {
    let mut out = Vec::new();
    let report = gcx::run(q, &EngineOptions::gcx(), doc, &mut out).expect("oracle run");
    // The blocking wrapper drives the session in 64KB reads straight into
    // the tokenizer window: feed_calls counts exactly those chunks, and a
    // single-chunk run has no boundary to spill a partial token across.
    let chunks = (doc.len() as u64).div_ceil(64 * 1024);
    assert_eq!(report.feed_calls, chunks, "feed_calls != 64KB chunks read");
    if chunks <= 1 {
        assert_eq!(report.max_pending_bytes, 0, "single-chunk run cannot spill");
    }
    (out, report)
}

/// Push the document through an `EvalSession` in pieces cut at `splits`
/// (ascending byte offsets); returns (output, report).
fn run_split(q: &CompiledQuery, doc: &[u8], splits: &[usize]) -> (Vec<u8>, RunReport) {
    let mut session = q.session(&EngineOptions::gcx());
    let mut from = 0;
    for &cut in splits {
        let cut = cut.min(doc.len());
        session.feed(&doc[from..cut]).expect("feed");
        from = cut;
    }
    session.feed(&doc[from..]).expect("final feed");
    let report = session.finish().expect("finish");
    // Every feed call counts, including empty chunks from duplicate cuts
    // (the session accepted them; "nothing arrived" is itself an event).
    assert_eq!(
        report.feed_calls,
        splits.len() as u64 + 1,
        "feed_calls must count exactly the chunks fed"
    );
    let mut out = Vec::new();
    session.take_output(&mut out).expect("drain");
    (out, report)
}

/// The invariant: chunking must be invisible in output AND measurements.
fn assert_equiv(label: &str, want: &(Vec<u8>, RunReport), got: &(Vec<u8>, RunReport)) {
    assert_eq!(got.0, want.0, "{label}: output differs");
    assert_eq!(got.1.tokens, want.1.tokens, "{label}: token count differs");
    assert_eq!(
        got.1.buffer.peak_live, want.1.buffer.peak_live,
        "{label}: peak buffered nodes differ"
    );
    assert_eq!(
        got.1.buffer.peak_live_bytes, want.1.buffer.peak_live_bytes,
        "{label}: peak buffer bytes differ"
    );
    assert_eq!(
        got.1.buffer.allocated, want.1.buffer.allocated,
        "{label}: allocation count differs"
    );
    assert_eq!(
        got.1.buffer.live, want.1.buffer.live,
        "{label}: live differs"
    );
    assert_eq!(
        got.1.output_bytes, want.1.output_bytes,
        "{label}: output_bytes differs"
    );
}

/// Tiny deterministic generator for random split points (no external
/// dependency; xorshift64*).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn splits(&mut self, len: usize, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).map(|_| (self.next() as usize) % (len + 1)).collect();
        v.sort_unstable();
        v
    }
}

/// Micro-document corpus: the paper's Figure 3 documents plus a mixed one.
fn microdocs() -> Vec<String> {
    use MicroKind::{Article, Book};
    vec![
        microdoc_article_heavy(),
        microdoc_book_heavy(),
        microdoc(&[Book, Article, Book, Book, Article]),
    ]
}

/// The paper's running bib query (Figure 1) — the microdocs' native query —
/// plus smaller shapes that exercise predicates, attributes and exists.
fn bib_queries() -> Vec<&'static str> {
    vec![
        r#"<r> {
            for $bib in /bib return
              (for $x in $bib/* return
                 if (not(exists($x/price))) then $x else (),
               for $b in $bib/book return $b/title)
          } </r>"#,
        "for $b in /bib/book return $b",
        "for $t in /bib/book/title return $t",
        "count(/bib/book)",
    ]
}

#[test]
fn every_two_way_split_of_every_microdoc() {
    let queries: Vec<CompiledQuery> = bib_queries()
        .iter()
        .map(|t| CompiledQuery::compile(t).expect("compile"))
        .collect();
    for (di, doc) in microdocs().iter().enumerate() {
        let doc = doc.as_bytes();
        for (qi, q) in queries.iter().enumerate() {
            let want = oracle(q, doc);
            for cut in 0..=doc.len() {
                let got = run_split(q, doc, &[cut]);
                assert_equiv(&format!("doc {di} query {qi} cut {cut}"), &want, &got);
            }
        }
    }
}

#[test]
fn one_byte_chunks_and_random_splits_microdocs() {
    let queries: Vec<CompiledQuery> = bib_queries()
        .iter()
        .map(|t| CompiledQuery::compile(t).expect("compile"))
        .collect();
    let mut rng = XorShift(0x9E3779B97F4A7C15);
    for (di, doc) in microdocs().iter().enumerate() {
        let doc = doc.as_bytes();
        for (qi, q) in queries.iter().enumerate() {
            let want = oracle(q, doc);
            // 1-byte chunks: every boundary at once.
            let all: Vec<usize> = (1..doc.len()).collect();
            let got = run_split(q, doc, &all);
            assert_equiv(&format!("doc {di} query {qi} 1-byte"), &want, &got);
            // Seeded random multi-way splits (duplicates = empty feeds).
            for round in 0..8 {
                let splits = rng.splits(doc.len(), 5);
                let got = run_split(q, doc, &splits);
                assert_equiv(
                    &format!("doc {di} query {qi} random {round} {splits:?}"),
                    &want,
                    &got,
                );
            }
        }
    }
}

#[test]
fn all_paper_queries_over_xmark_at_arbitrary_boundaries() {
    // A real XMark document (the benchmark corpus) with all 11 paper
    // queries: chunk sizes that straddle every construct, plus random
    // splits. This is the exact pipeline `gcx bench throughput` measures.
    let mut cfg = gcx_xmark::XmarkConfig::sized(48 * 1024);
    cfg.seed = 42;
    let mut doc = Vec::new();
    gcx_xmark::generate(&cfg, &mut doc).expect("generate");

    let mut rng = XorShift(42);
    for (name, text) in paper_queries() {
        let q = CompiledQuery::compile(text).expect(name);
        let want = oracle(&q, &doc);
        for chunk in [1usize, 7, 64, 1024] {
            let splits: Vec<usize> = (1..doc.len()).step_by(chunk).collect();
            let got = run_split(&q, &doc, &splits);
            assert_equiv(&format!("{name} chunk {chunk}"), &want, &got);
        }
        for round in 0..4 {
            let splits = rng.splits(doc.len(), 9);
            let got = run_split(&q, &doc, &splits);
            assert_equiv(&format!("{name} random {round}"), &want, &got);
        }
    }
}

#[test]
fn unsplit_runs_carry_no_spillover() {
    // One feed of the whole document: exactly one feed call, and the
    // tokenizer never holds a partial token across a boundary (there is
    // no boundary), so the spillover watermark must stay zero.
    let queries: Vec<CompiledQuery> = bib_queries()
        .iter()
        .map(|t| CompiledQuery::compile(t).expect("compile"))
        .collect();
    for (di, doc) in microdocs().iter().enumerate() {
        let doc = doc.as_bytes();
        for (qi, q) in queries.iter().enumerate() {
            let want = oracle(q, doc);
            let got = run_split(q, doc, &[]);
            assert_equiv(&format!("doc {di} query {qi} unsplit"), &want, &got);
            assert_eq!(got.1.feed_calls, 1, "doc {di} query {qi}: one chunk fed");
            assert_eq!(
                got.1.max_pending_bytes, 0,
                "doc {di} query {qi}: unsplit run must not spill"
            );
        }
    }
}

#[test]
fn boundaries_inside_utf8_and_cdata_are_invisible() {
    // Multi-byte text (α=2 bytes, 漢=3, 🚀=4), CDATA with markup-like
    // content, entities and attributes — split at EVERY byte, so some
    // split lands inside each multi-byte sequence, inside `<![CDATA[`,
    // inside `]]>`, inside entities and inside quoted attributes.
    let doc = "<bib><book lang=\"ελ\"><title>αβγ 漢字 🚀&amp;done</title>\
               <note><![CDATA[x < y & <fake>]]></note></book>\
               <book><title>t&#13;2</title></book></bib>";
    let doc = doc.as_bytes();
    for text in [
        "for $t in /bib/book/title return $t",
        "for $b in /bib/book return $b",
        "for $n in /bib/book/note return $n/text()",
    ] {
        let q = CompiledQuery::compile(text).expect("compile");
        let want = oracle(&q, doc);
        for cut in 0..=doc.len() {
            let got = run_split(&q, doc, &[cut]);
            assert_equiv(&format!("{text} cut {cut}"), &want, &got);
        }
        // And fully byte-at-a-time.
        let all: Vec<usize> = (1..doc.len()).collect();
        let got = run_split(&q, doc, &all);
        assert_equiv(&format!("{text} 1-byte"), &want, &got);
    }
}

// ---- randomized splits (external `proptest`, offline-gated) -----------------

#[cfg(feature = "proptest")]
mod random {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Arbitrary split vectors over arbitrary microdoc shapes: the
        /// session must be boundary-blind for every query in the corpus.
        #[test]
        fn arbitrary_splits_are_invisible(
            kinds in proptest::collection::vec(
                prop_oneof![Just(MicroKind::Article), Just(MicroKind::Book)],
                1..12,
            ),
            raw_splits in proptest::collection::vec(0usize..4096, 0..12),
            qi in 0usize..4,
        ) {
            let doc = microdoc(&kinds);
            let doc = doc.as_bytes();
            let q = CompiledQuery::compile(bib_queries()[qi]).unwrap();
            let want = oracle(&q, doc);
            let mut splits: Vec<usize> =
                raw_splits.iter().map(|&s| s % (doc.len() + 1)).collect();
            splits.sort_unstable();
            let got = run_split(&q, doc, &splits);
            assert_equiv(&format!("proptest {splits:?}"), &want, &got);
        }
    }
}
