//! Scaling behaviour on the XMark-like workload — the load-bearing claims
//! of the paper's Figures 4 and 5, checked as assertions:
//!
//! * Q1/Q6/Q13/Q20 run in **constant** buffer space as the document grows;
//! * the join Q8 grows **linearly**;
//! * GCX's peak is far below projection-only and full buffering;
//! * all engines agree on the results.

use gcx::xmark::{generate_string, queries, XmarkConfig};
use gcx::{CompiledQuery, EngineOptions};

fn doc(kb: u64) -> String {
    generate_string(&XmarkConfig::sized(kb * 1024))
}

fn peak(query: &str, doc: &str, opts: &EngineOptions) -> u64 {
    let q = CompiledQuery::compile(query).unwrap();
    let report = gcx::run(&q, opts, doc.as_bytes(), std::io::sink()).unwrap();
    report.buffer.peak_live
}

#[test]
fn streaming_queries_run_in_constant_space() {
    let small = doc(64);
    let large = doc(256);
    for (name, q) in [
        ("Q1", queries::Q1),
        ("Q13", queries::Q13),
        ("Q20", queries::Q20),
    ] {
        let p_small = peak(q, &small, &EngineOptions::gcx());
        let p_large = peak(q, &large, &EngineOptions::gcx());
        // 4x the input, (near-)unchanged buffer. Allow slack for entity
        // size variation.
        assert!(
            p_large <= p_small.max(8) * 2,
            "{name}: peak grew {p_small} -> {p_large} on 4x input"
        );
    }
}

#[test]
fn q6_constant_space_with_descendant_axes() {
    let small = doc(64);
    let large = doc(256);
    let p_small = peak(queries::Q6, &small, &EngineOptions::gcx());
    let p_large = peak(queries::Q6, &large, &EngineOptions::gcx());
    assert!(
        p_large <= p_small.max(8) * 2,
        "Q6 peak grew {p_small} -> {p_large}"
    );
    assert!(p_large < 100, "paper: fewer than 100 buffered nodes for Q6");
}

#[test]
fn join_query_q8_grows_linearly() {
    let small = doc(64);
    let large = doc(256);
    let p_small = peak(queries::Q8, &small, &EngineOptions::gcx());
    let p_large = peak(queries::Q8, &large, &EngineOptions::gcx());
    // Linear in input: 4x the document, roughly 4x the peak (allow 2.5x..6x).
    let ratio = p_large as f64 / p_small as f64;
    assert!(
        (2.5..6.0).contains(&ratio),
        "Q8 should scale linearly; peaks {p_small} -> {p_large} (ratio {ratio:.2})"
    );
}

#[test]
fn gcx_beats_projection_beats_full_buffering() {
    let d = doc(128);
    for (name, q) in [
        ("Q1", queries::Q1),
        ("Q6", queries::Q6),
        ("Q13", queries::Q13),
    ] {
        let gcx_peak = peak(q, &d, &EngineOptions::gcx());
        let proj_peak = peak(q, &d, &EngineOptions::projection_only());
        let full_peak = peak(q, &d, &EngineOptions::full_buffering());
        assert!(
            gcx_peak * 5 < proj_peak,
            "{name}: active GC should dominate projection ({gcx_peak} vs {proj_peak})"
        );
        assert!(
            proj_peak < full_peak,
            "{name}: projection should beat full buffering ({proj_peak} vs {full_peak})"
        );
    }
}

#[test]
fn all_engines_agree_on_xmark_queries() {
    let d = doc(96);
    for (name, qtext) in queries::FIGURE5_QUERIES {
        let q = CompiledQuery::compile(qtext).unwrap();
        let mut gcx_out = Vec::new();
        gcx::run(&q, &EngineOptions::gcx(), d.as_bytes(), &mut gcx_out).unwrap();
        let mut full_out = Vec::new();
        gcx::run(
            &q,
            &EngineOptions::full_buffering(),
            d.as_bytes(),
            &mut full_out,
        )
        .unwrap();
        assert_eq!(gcx_out, full_out, "{name}: gcx vs full-buffering");
        let dom_q = gcx::query::compile(qtext).unwrap();
        let mut dom_out = Vec::new();
        gcx::dom::run(&dom_q, d.as_bytes(), &mut dom_out).unwrap();
        assert_eq!(gcx_out, dom_out, "{name}: gcx vs dom");
    }
}

#[test]
fn q1_finds_person0() {
    let d = doc(64);
    let out = gcx::run_query(queries::Q1, &d).unwrap();
    assert!(out.starts_with("<name>"), "person0 must exist: {out}");
}

#[test]
fn q8_output_contains_people_with_purchases() {
    let d = doc(64);
    let out = gcx::run_query(queries::Q8, &d).unwrap();
    assert!(
        out.contains("<itemref"),
        "some purchases must join: {out:.200}"
    );
    // Every person appears exactly once.
    let persons = out.matches("<items>").count();
    let expected = XmarkConfig::sized(64 * 1024).counts().persons as usize;
    assert_eq!(persons, expected);
}

#[test]
fn q20_partitions_every_profiled_person() {
    let d = doc(64);
    let out = gcx::run_query(queries::Q20, &d).unwrap();
    let total = out.matches("<preferred/>").count()
        + out.matches("<standard/>").count()
        + out.matches("<challenge/>").count()
        + out.matches("<na/>").count();
    let persons = XmarkConfig::sized(64 * 1024).counts().persons as usize;
    assert_eq!(total, persons, "every person falls in exactly one bracket");
}

#[test]
fn buffer_always_drains_on_xmark() {
    let d = doc(96);
    for (_, qtext) in queries::FIGURE5_QUERIES {
        let q = CompiledQuery::compile(qtext).unwrap();
        let report = gcx::run(&q, &EngineOptions::gcx(), d.as_bytes(), std::io::sink()).unwrap();
        assert_eq!(report.buffer.live, 0);
    }
}
