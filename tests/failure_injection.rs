//! Failure injection: truncated streams, corrupted documents, I/O errors
//! and hostile queries must surface as typed errors — never panics, hangs
//! or silent wrong answers.

use gcx::xmark::{generate_string, queries, XmarkConfig};
use gcx::{CompiledQuery, EngineOptions};
use std::io::Read;

#[test]
fn truncated_documents_error_for_every_engine() {
    let doc = generate_string(&XmarkConfig::sized(16 * 1024));
    let q = CompiledQuery::compile(queries::Q1).unwrap();
    // Cut at a spread of positions, including mid-tag and mid-text.
    for frac in [1, 3, 7, 10, 13, 17, 19] {
        let cut = doc.len() * frac / 20;
        // Align to a char boundary.
        let mut cut = cut;
        while !doc.is_char_boundary(cut) {
            cut -= 1;
        }
        let truncated = &doc[..cut];
        for opts in [
            EngineOptions::gcx(),
            EngineOptions::projection_only(),
            EngineOptions::full_buffering(),
        ] {
            let r = gcx::run(&q, &opts, truncated.as_bytes(), std::io::sink());
            assert!(r.is_err(), "cut at {cut} must error");
        }
        let dq = gcx::query::compile(queries::Q1).unwrap();
        assert!(gcx::dom::run(&dq, truncated.as_bytes(), std::io::sink()).is_err());
    }
}

#[test]
fn corrupted_tags_error_not_panic() {
    let cases = [
        "<site><people><person id='p'><name>x</name></people></site>", // mismatched
        "<site>&undefined;</site>",
        "<site><p attr=novalue/></site>",
        "<site><1bad/></site>",
        "<site><p><![CDATA[unterminated</p></site>",
        "<site><!-- unterminated</site>",
        "<site><p></p></site><extra/>",
    ];
    let q = CompiledQuery::compile("for $x in /site/p return $x").unwrap();
    for doc in cases {
        let r = gcx::run(&q, &EngineOptions::gcx(), doc.as_bytes(), std::io::sink());
        assert!(r.is_err(), "must reject: {doc}");
    }
}

/// A reader that fails after `n` bytes.
struct FailingReader {
    data: Vec<u8>,
    pos: usize,
    fail_at: usize,
}

impl Read for FailingReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.fail_at {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "injected",
            ));
        }
        let n = buf
            .len()
            .min(self.fail_at - self.pos)
            .min(self.data.len() - self.pos);
        if n == 0 {
            return Ok(0);
        }
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[test]
fn io_errors_propagate() {
    let doc = generate_string(&XmarkConfig::sized(8 * 1024));
    let q = CompiledQuery::compile(queries::Q6).unwrap();
    for fail_at in [0, 10, 1000, doc.len() / 2] {
        let reader = FailingReader {
            data: doc.clone().into_bytes(),
            pos: 0,
            fail_at,
        };
        let r = gcx::run(&q, &EngineOptions::gcx(), reader, std::io::sink());
        match r {
            Err(gcx::EngineError::Xml(e)) => {
                assert!(e.to_string().contains("injected") || e.to_string().contains("I/O"));
            }
            Err(other) => panic!("wrong error type: {other}"),
            Ok(_) => panic!("must fail at {fail_at}"),
        }
    }
}

/// A writer that fails after `n` bytes: output-side errors must propagate.
struct FailingWriter {
    written: usize,
    fail_at: usize,
}

impl std::io::Write for FailingWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.written + buf.len() > self.fail_at {
            return Err(std::io::Error::new(
                std::io::ErrorKind::StorageFull,
                "disk full",
            ));
        }
        self.written += buf.len();
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn output_errors_propagate() {
    let doc = generate_string(&XmarkConfig::sized(32 * 1024));
    let q = CompiledQuery::compile(queries::Q6).unwrap();
    let w = FailingWriter {
        written: 0,
        fail_at: 100,
    };
    let r = gcx::run(&q, &EngineOptions::gcx(), doc.as_bytes(), w);
    assert!(r.is_err(), "output failure must propagate");
}

#[test]
fn hostile_queries_rejected_at_compile_time() {
    let cases = [
        ("$undefined", "unbound"),
        ("for $x in /a return $y", "unbound"),
        ("for $x in /a/@id return $x", "fragment"),
        ("for $x in /a return signOff($x, r1)", "fragment"),
        ("for $x in /a return", "expected"),
        ("<a>{ 'x' }</b>", "closed by"),
        ("if (count(/a) = 1) then 'x'", ""), // aggregates are not operands
        ("for $x in /a[0] return $x", "positive"),
    ];
    for (q, needle) in cases {
        match CompiledQuery::compile(q) {
            Err(e) => {
                let msg = e.to_string();
                assert!(
                    msg.to_lowercase().contains(needle),
                    "error for `{q}` should mention `{needle}`: {msg}"
                );
            }
            Ok(_) => panic!("must reject: {q}"),
        }
    }
}

#[test]
fn deeply_nested_input_does_not_overflow() {
    // 50k-deep nesting exercises the iterative paths of the tokenizer,
    // matcher and buffer (the purge walk is iterative by design).
    let depth = 50_000;
    let mut doc = String::with_capacity(depth * 7);
    for _ in 0..depth {
        doc.push_str("<d>");
    }
    for _ in 0..depth {
        doc.push_str("</d>");
    }
    let q = CompiledQuery::compile("for $x in /d/d return 'found'").unwrap();
    let out = {
        let mut out = Vec::new();
        gcx::run(&q, &EngineOptions::gcx(), doc.as_bytes(), &mut out).unwrap();
        String::from_utf8(out).unwrap()
    };
    assert_eq!(out, "found");
}

#[test]
fn pathological_many_roles_query() {
    // A query with dozens of projection paths stays correct.
    let mut q = String::from("<r>{ ");
    for i in 0..30 {
        if i > 0 {
            q.push_str(", ");
        }
        q.push_str(&format!("for $x{i} in /a/b{i} return $x{i}/c{i}"));
    }
    q.push_str(" }</r>");
    let compiled = CompiledQuery::compile(&q).unwrap();
    assert!(compiled.analysis.roles.len() > 60);
    let doc = "<a><b3><c3>hit</c3></b3><b7/></a>";
    let mut out = Vec::new();
    let report = gcx::run(&compiled, &EngineOptions::gcx(), doc.as_bytes(), &mut out).unwrap();
    assert_eq!(String::from_utf8(out).unwrap(), "<r><c3>hit</c3></r>");
    assert_eq!(report.buffer.live, 0);
}

#[test]
fn empty_and_trivial_documents() {
    let q = CompiledQuery::compile("for $x in /a return $x").unwrap();
    // Empty input: error (no document element).
    assert!(gcx::run(&q, &EngineOptions::gcx(), "".as_bytes(), std::io::sink()).is_err());
    // Whitespace-only: error.
    assert!(gcx::run(
        &q,
        &EngineOptions::gcx(),
        "   \n ".as_bytes(),
        std::io::sink()
    )
    .is_err());
    // Minimal document, no match.
    let mut out = Vec::new();
    gcx::run(&q, &EngineOptions::gcx(), "<b/>".as_bytes(), &mut out).unwrap();
    assert!(out.is_empty());
}
