//! Schema differential suite: attaching a DTD the input is valid
//! against must be **observably free** — output bytes identical to the
//! schema-blind run for every paper query, under any chunking — while
//! the buffer contract only ever improves: `peak_live_bytes` ≤ the
//! blind baseline everywhere, and strictly lower where the DTD's
//! content models let the engine skip unreachable subtrees or sign
//! variables off before the parent's close tag.
//!
//! Coverage:
//!
//! * all 11 paper queries over generated XMark documents (two sizes,
//!   two seeds), schema on vs off — byte-identical outputs, token
//!   counts equal, peaks ≤;
//! * the strict-improvement floor: on every tested document at least
//!   three queries must show strictly lower peaks (the reach-filter
//!   queries Q6/Q14/Q6_COUNT on XMark shapes);
//! * schema-aware runs driven through the sans-IO session under seeded
//!   random chunk splits and 1-byte chunks — cutoff bookkeeping and
//!   early sign-off must be boundary-blind, including the trigger
//!   counters themselves;
//! * pinned early-purge trigger counts on a fixed document, so a
//!   regression that silently stops triggering (counters drop to 0 but
//!   nothing else changes) still fails;
//! * DTD-unsatisfiable path pruning surfaced for Q17 (`person/homepage`
//!   is absent from the trimmed XMark DTD);
//! * in-stream `<!DOCTYPE site [...]>` adoption: a `--doctype`-generated
//!   document activates the sibling-order facts without any option set,
//!   and `schema_from_doctype: false` opts out.

use gcx::schema::Dtd;
use gcx::xmark::{generate_string, queries, XmarkConfig};
use gcx::{CompiledQuery, EngineOptions, RunReport};

fn xmark(kb: u64, seed: u64) -> String {
    let mut cfg = XmarkConfig::sized(kb * 1024);
    cfg.seed = seed;
    generate_string(&cfg)
}

fn xmark_doctype(kb: u64, seed: u64) -> String {
    let mut cfg = XmarkConfig::sized(kb * 1024).with_doctype();
    cfg.seed = seed;
    generate_string(&cfg)
}

fn blind() -> EngineOptions {
    EngineOptions::gcx()
}

fn aware() -> EngineOptions {
    EngineOptions::gcx().with_schema(Dtd::xmark())
}

/// Single-shot run through the blocking wrapper.
fn run_once(q: &CompiledQuery, opts: &EngineOptions, doc: &[u8]) -> (Vec<u8>, RunReport) {
    let mut out = Vec::new();
    let report = gcx::run(q, opts, doc, &mut out).expect("run");
    (out, report)
}

/// Push `doc` through an `EvalSession` cut at `splits` (ascending offsets).
fn run_split(
    q: &CompiledQuery,
    opts: &EngineOptions,
    doc: &[u8],
    splits: &[usize],
) -> (Vec<u8>, RunReport) {
    let mut session = q.session(opts);
    let mut from = 0;
    for &cut in splits {
        let cut = cut.min(doc.len());
        session.feed(&doc[from..cut]).expect("feed");
        from = cut;
    }
    session.feed(&doc[from..]).expect("final feed");
    let report = session.finish().expect("finish");
    let mut out = Vec::new();
    session.take_output(&mut out).expect("drain");
    (out, report)
}

/// The schema contract: identical observable behaviour, never-worse peaks.
fn assert_schema_free(label: &str, blind: &(Vec<u8>, RunReport), aware: &(Vec<u8>, RunReport)) {
    assert_eq!(
        aware.0, blind.0,
        "{label}: schema-aware output differs from schema-blind"
    );
    assert_eq!(
        aware.1.tokens, blind.1.tokens,
        "{label}: token count differs"
    );
    assert_eq!(
        aware.1.output_bytes, blind.1.output_bytes,
        "{label}: output_bytes differs"
    );
    assert!(
        aware.1.buffer.peak_live_bytes <= blind.1.buffer.peak_live_bytes,
        "{label}: schema RAISED the byte peak ({} > {})",
        aware.1.buffer.peak_live_bytes,
        blind.1.buffer.peak_live_bytes
    );
    assert!(
        aware.1.buffer.peak_live <= blind.1.buffer.peak_live,
        "{label}: schema RAISED the node peak ({} > {})",
        aware.1.buffer.peak_live,
        blind.1.buffer.peak_live
    );
    assert!(
        aware.1.schema.is_some(),
        "{label}: schema-aware run must carry a schema report"
    );
    assert!(
        blind.1.schema.is_none(),
        "{label}: schema-blind run must not carry a schema report"
    );
}

/// Deterministic split-point generator (xorshift64*, no external deps).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn splits(&mut self, len: usize, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).map(|_| (self.next() as usize) % (len + 1)).collect();
        v.sort_unstable();
        v
    }
}

#[test]
fn all_paper_queries_byte_identical_and_peaks_never_worse() {
    for (kb, seed) in [(96, 0x6C_78_67), (48, 42)] {
        let doc = xmark(kb, seed);
        let mut strictly_lower = 0usize;
        for (name, qtext) in queries::paper_queries() {
            let q = CompiledQuery::compile(qtext).expect("compile");
            let want = run_once(&q, &blind(), doc.as_bytes());
            let got = run_once(&q, &aware(), doc.as_bytes());
            assert_schema_free(&format!("{name} ({kb}KB seed {seed})"), &want, &got);
            if got.1.buffer.peak_live_bytes < want.1.buffer.peak_live_bytes {
                strictly_lower += 1;
            }
        }
        // The acceptance floor: the DTD must actually buy something, on
        // every tested document, for at least three of the paper queries.
        assert!(
            strictly_lower >= 3,
            "({kb}KB seed {seed}): schema lowered the peak on only \
             {strictly_lower} queries (floor: 3)"
        );
    }
}

#[test]
fn schema_runs_are_chunk_boundary_blind() {
    let doc = xmark(48, 7);
    let bytes = doc.as_bytes();
    let mut rng = XorShift(0x9E3779B97F4A7C15);
    for (name, qtext) in queries::paper_queries() {
        let q = CompiledQuery::compile(qtext).expect("compile");
        let base = run_once(&q, &blind(), bytes);
        let whole = run_once(&q, &aware(), bytes);
        assert_schema_free(&format!("{name} (unsplit)"), &base, &whole);
        for round in 0..3 {
            let splits = rng.splits(bytes.len(), 8);
            let got = run_split(&q, &aware(), bytes, &splits);
            assert_schema_free(&format!("{name} splits round {round}"), &base, &got);
            // The trigger counters are part of the observable contract:
            // chunking must not change how often the schema fired.
            let (a, b) = (
                whole.1.schema.as_ref().expect("schema report"),
                got.1.schema.as_ref().expect("schema report"),
            );
            assert_eq!(
                (a.early_scan_ends, a.early_signoffs, a.reach_cuts),
                (b.early_scan_ends, b.early_signoffs, b.reach_cuts),
                "{name} splits round {round}: trigger counts drifted with chunking"
            );
        }
    }
}

#[test]
fn one_byte_chunks_with_schema() {
    // 1-byte chunks maximize suspension churn through the cutoff and
    // early-sign-off paths; a small doc keeps the sweep fast.
    let doc = xmark(16, 3);
    let bytes = doc.as_bytes();
    let splits: Vec<usize> = (1..bytes.len()).collect();
    for qtext in [queries::Q6, queries::extra::Q14, queries::Q20] {
        let q = CompiledQuery::compile(qtext).expect("compile");
        let want = run_once(&q, &blind(), bytes);
        let got = run_split(&q, &aware(), bytes, &splits);
        assert_schema_free("1-byte chunks", &want, &got);
    }
}

/// Early-purge trigger counts on a fixed document. These are the paper's
/// "earliest emission" discipline made measurable: if a refactor silently
/// stops triggering (outputs stay right, counters go to 0), this fails.
#[test]
fn early_purge_trigger_counts_are_pinned() {
    let doc = xmark(48, 42);
    // (query, early_scan_ends, early_signoffs) on this exact document.
    let pinned = [
        (queries::Q1, "Q1", 2u64, 39u64),
        (queries::Q6, "Q6", 34, 33),
        (queries::Q20, "Q20", 38, 55),
        (queries::extra::Q3, "Q3", 19, 54),
    ];
    for (qtext, name, scan_ends, signoffs) in pinned {
        let q = CompiledQuery::compile(qtext).expect("compile");
        let (_, report) = run_once(&q, &aware(), doc.as_bytes());
        let s = report.schema.expect("schema report");
        assert_eq!(
            (s.early_scan_ends, s.early_signoffs),
            (scan_ends, signoffs),
            "{name}: early-purge trigger counts moved (update deliberately \
             if the analysis got sharper)"
        );
    }
}

#[test]
fn q17_prunes_the_undeclared_homepage_path() {
    // The trimmed XMark DTD declares no `homepage` under `person`, so
    // Q17's projection path for it is DTD-unsatisfiable and must be
    // dropped before the matcher is built.
    let q = CompiledQuery::compile(queries::extra::Q17).expect("compile");
    let doc = xmark(48, 42);
    let want = run_once(&q, &blind(), doc.as_bytes());
    let got = run_once(&q, &aware(), doc.as_bytes());
    assert_schema_free("Q17", &want, &got);
    let s = got.1.schema.expect("schema report");
    assert_eq!(s.pruned_paths, 1, "exactly the homepage path is pruned");
    assert_eq!(s.total_paths, 4);
}

#[test]
fn reach_filter_skips_subtrees_no_declared_ancestry_reaches() {
    // Q14 matches `//item`: schema-blind projection must speculatively
    // track every subtree a descendant item could hide in; the DTD pins
    // where items live, so everything else is skipped at the start tag.
    let q = CompiledQuery::compile(queries::extra::Q14).expect("compile");
    let doc = xmark(48, 42);
    let want = run_once(&q, &blind(), doc.as_bytes());
    let got = run_once(&q, &aware(), doc.as_bytes());
    assert_schema_free("Q14", &want, &got);
    let s = got.1.schema.as_ref().expect("schema report");
    assert!(s.reach_cuts > 0, "Q14 must cut unreachable subtrees");
    assert!(
        got.1.buffer.peak_live_bytes < want.1.buffer.peak_live_bytes,
        "Q14's peak must strictly improve ({} vs {})",
        got.1.buffer.peak_live_bytes,
        want.1.buffer.peak_live_bytes
    );
    assert!(
        got.1.buffer.allocated < want.1.buffer.allocated,
        "Q14 must allocate fewer speculative nodes"
    );
}

#[test]
fn doctype_declaration_is_adopted_from_the_stream() {
    let plain = xmark(48, 42);
    let with_dtd = xmark_doctype(48, 42);
    assert_ne!(plain, with_dtd, "generator must have emitted a DOCTYPE");
    for (name, qtext) in queries::paper_queries() {
        let q = CompiledQuery::compile(qtext).expect("compile");
        let base = run_once(&q, &blind(), plain.as_bytes());
        let adopted = run_once(&q, &blind(), with_dtd.as_bytes());
        // The declaration is not query-visible data: outputs identical.
        assert_eq!(
            adopted.0, base.0,
            "{name}: DOCTYPE adoption changed the output"
        );
        let s = adopted
            .1
            .schema
            .expect("adopted run carries a schema report");
        assert!(s.doctype_adopted, "{name}: doctype_adopted must be set");
        assert!(
            adopted.1.buffer.peak_live_bytes <= base.1.buffer.peak_live_bytes,
            "{name}: adoption raised the peak"
        );
    }
}

#[test]
fn doctype_adoption_can_be_opted_out() {
    let with_dtd = xmark_doctype(24, 5);
    let q = CompiledQuery::compile(queries::Q1).expect("compile");
    let mut opts = EngineOptions::gcx();
    opts.schema_from_doctype = false;
    let (out, report) = run_once(&q, &opts, with_dtd.as_bytes());
    assert!(
        report.schema.is_none(),
        "opted-out run must not build schema state"
    );
    let baseline = run_once(&q, &blind(), with_dtd.as_bytes());
    assert_eq!(out, baseline.0, "opt-out only disables the facts");
}

/// An explicit `--schema` wins over (and suppresses) in-stream adoption:
/// the report must say the facts came from the option, not the document.
#[test]
fn explicit_schema_suppresses_doctype_adoption() {
    let with_dtd = xmark_doctype(24, 5);
    let q = CompiledQuery::compile(queries::Q6).expect("compile");
    let (out, report) = run_once(&q, &aware(), with_dtd.as_bytes());
    let s = report.schema.expect("schema report");
    assert!(!s.doctype_adopted, "explicit schema must win");
    let baseline = run_once(&q, &blind(), with_dtd.as_bytes());
    assert_eq!(out, baseline.0);
}
