//! Optimizer differential suite: the pass pipeline's contract is
//! **bit-identical observable behaviour** — `CompiledQuery::compile`
//! (optimized) and `compile_opts(text, false)` (naive lowering) must
//! produce the same output bytes, the same token counts and the same
//! buffer peaks, because every pass (step fusion, shared steps, cached
//! exists, hash join) is only allowed to change *how* the plan executes,
//! never *what* it buffers or emits.
//!
//! Coverage:
//!
//! * all 11 paper queries over generated XMark documents (two sizes,
//!   two seeds) — this exercises the hash-join path on Q8 and the
//!   exists-cache on the conditional queries;
//! * the same pairs driven through the sans-IO session under seeded
//!   random chunk splits and 1-byte chunks — the join build/probe and
//!   wait-based batching must be boundary-blind too;
//! * the paper's bib microdocs under the running Figure 1 query;
//! * (feature `proptest`) randomized split vectors over randomized
//!   document seeds.

use gcx::xmark::{generate_string, queries, XmarkConfig};
use gcx::{CompiledQuery, EngineOptions, RunReport};

fn xmark(kb: u64, seed: u64) -> String {
    let mut cfg = XmarkConfig::sized(kb * 1024);
    cfg.seed = seed;
    generate_string(&cfg)
}

/// Single-shot run through the blocking wrapper.
fn run_once(q: &CompiledQuery, doc: &[u8]) -> (Vec<u8>, RunReport) {
    let mut out = Vec::new();
    let report = gcx::run(q, &EngineOptions::gcx(), doc, &mut out).expect("run");
    (out, report)
}

/// Push `doc` through an `EvalSession` cut at `splits` (ascending offsets).
fn run_split(q: &CompiledQuery, doc: &[u8], splits: &[usize]) -> (Vec<u8>, RunReport) {
    let mut session = q.session(&EngineOptions::gcx());
    let mut from = 0;
    for &cut in splits {
        let cut = cut.min(doc.len());
        session.feed(&doc[from..cut]).expect("feed");
        from = cut;
    }
    session.feed(&doc[from..]).expect("final feed");
    let report = session.finish().expect("finish");
    let mut out = Vec::new();
    session.take_output(&mut out).expect("drain");
    (out, report)
}

/// The optimizer contract: output AND measurements are unchanged.
fn assert_equiv(label: &str, unopt: &(Vec<u8>, RunReport), opt: &(Vec<u8>, RunReport)) {
    assert_eq!(
        opt.0, unopt.0,
        "{label}: optimized output differs from unoptimized"
    );
    assert_eq!(opt.1.tokens, unopt.1.tokens, "{label}: token count differs");
    assert_eq!(
        opt.1.buffer.peak_live, unopt.1.buffer.peak_live,
        "{label}: peak buffered nodes differ"
    );
    assert_eq!(
        opt.1.buffer.peak_live_bytes, unopt.1.buffer.peak_live_bytes,
        "{label}: peak buffer bytes differ"
    );
    assert_eq!(
        opt.1.buffer.allocated, unopt.1.buffer.allocated,
        "{label}: allocation count differs"
    );
    assert_eq!(
        opt.1.output_bytes, unopt.1.output_bytes,
        "{label}: output_bytes differs"
    );
}

/// Compile one query both ways.
fn compile_pair(text: &str) -> (CompiledQuery, CompiledQuery) {
    let opt = CompiledQuery::compile(text).expect("compile (optimized)");
    let unopt = CompiledQuery::compile_opts(text, false).expect("compile (unoptimized)");
    (opt, unopt)
}

/// Deterministic split-point generator (xorshift64*, no external deps).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn splits(&mut self, len: usize, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).map(|_| (self.next() as usize) % (len + 1)).collect();
        v.sort_unstable();
        v
    }
}

#[test]
fn all_paper_queries_agree_on_xmark() {
    for (kb, seed) in [(96, 0x6C_78_67), (48, 42)] {
        let doc = xmark(kb, seed);
        for (name, qtext) in queries::paper_queries() {
            let (opt, unopt) = compile_pair(qtext);
            let want = run_once(&unopt, doc.as_bytes());
            let got = run_once(&opt, doc.as_bytes());
            assert_equiv(&format!("{name} ({kb}KB seed {seed})"), &want, &got);
        }
    }
}

#[test]
fn hash_join_pass_fires_on_q8() {
    let (opt, unopt) = compile_pair(queries::Q8);
    assert!(
        unopt.opt.is_none(),
        "unoptimized artifact carries no report"
    );
    let report = opt.opt.as_ref().expect("optimized artifact has a report");
    let join = report
        .passes
        .iter()
        .find(|p| p.name == "hash-join")
        .expect("hash-join pass ran");
    assert!(join.changes > 0, "Q8's value join must be rewritten");
}

#[test]
fn optimized_plans_are_chunk_boundary_blind() {
    let doc = xmark(48, 7);
    let bytes = doc.as_bytes();
    let mut rng = XorShift(0x9E3779B97F4A7C15);
    for (name, qtext) in queries::paper_queries() {
        let (opt, unopt) = compile_pair(qtext);
        let want = run_once(&unopt, bytes);
        for round in 0..3 {
            let splits = rng.splits(bytes.len(), 8);
            let got = run_split(&opt, bytes, &splits);
            assert_equiv(&format!("{name} splits round {round}"), &want, &got);
        }
    }
}

#[test]
fn one_byte_chunks_on_the_join_query() {
    // 1-byte chunks maximize suspension churn through the join build and
    // probe loops; a small doc keeps the sweep fast.
    let doc = xmark(16, 3);
    let bytes = doc.as_bytes();
    let splits: Vec<usize> = (1..bytes.len()).collect();
    for qtext in [queries::Q8, queries::Q20, queries::Q13] {
        let (opt, unopt) = compile_pair(qtext);
        let want = run_once(&unopt, bytes);
        let got = run_split(&opt, bytes, &splits);
        assert_equiv("1-byte chunks", &want, &got);
    }
}

#[test]
fn bib_running_example_agrees() {
    use gcx::xmark::{microdoc, MicroKind};
    let q = r#"<r> {
        for $bib in /bib return
          (for $x in $bib/* return
             if (not(exists($x/price))) then $x else (),
           for $b in $bib/book return $b/title)
      } </r>"#;
    let (opt, unopt) = compile_pair(q);
    use MicroKind::{Article, Book};
    for doc in [
        microdoc(&[Book, Article, Book, Book, Article]),
        microdoc(&[Article, Article]),
        microdoc(&[Book]),
    ] {
        let want = run_once(&unopt, doc.as_bytes());
        let got = run_once(&opt, doc.as_bytes());
        assert_equiv("bib microdoc", &want, &got);
    }
}

// ---- randomized variant (external `proptest`, offline-gated) ----------------

#[cfg(feature = "proptest")]
mod random {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Arbitrary document seeds and split vectors: the optimized plan
        /// must match the naive plan byte-for-byte on every paper query,
        /// however the document is generated or chunked.
        #[test]
        fn optimizer_is_invisible_on_random_docs(
            seed in proptest::num::u64::ANY,
            raw_splits in proptest::collection::vec(0usize..64 * 1024, 0..10),
            qi in 0usize..11,
        ) {
            let doc = xmark(24, seed);
            let bytes = doc.as_bytes();
            let (name, qtext) = queries::paper_queries()[qi];
            let (opt, unopt) = compile_pair(qtext);
            let want = run_once(&unopt, bytes);
            let mut splits: Vec<usize> =
                raw_splits.iter().map(|&s| s % (bytes.len() + 1)).collect();
            splits.sort_unstable();
            let got = run_split(&opt, bytes, &splits);
            assert_equiv(&format!("{name} seed {seed}"), &want, &got);
        }
    }
}
