//! Tests for features beyond the paper's fragment: aggregation and string
//! predicates, plus additional adapted XMark queries exercising them. Each
//! extension is validated against the DOM oracle and the buffer-balance
//! invariant, exactly like core features.

use gcx::{CompiledQuery, EngineOptions};

fn gcx_and_oracle(query: &str, doc: &str) -> String {
    let q = CompiledQuery::compile(query).unwrap();
    let mut out = Vec::new();
    let report = gcx::run(&q, &EngineOptions::gcx(), doc.as_bytes(), &mut out).unwrap();
    assert_eq!(report.buffer.live, 0, "buffer must drain\n{query}");
    let got = String::from_utf8(out).unwrap();
    let oracle = gcx::dom::run_query(query, doc).unwrap();
    assert_eq!(got, oracle, "gcx vs dom oracle\n{query}");
    got
}

// ---- string predicates --------------------------------------------------------

#[test]
fn contains_on_element_values() {
    let out = gcx_and_oracle(
        "for $i in /l/i return if (contains($i/name, 'gold')) then $i/name/text() else ()",
        "<l><i><name>pure gold ring</name></i><i><name>silver</name></i></l>",
    );
    assert_eq!(out, "pure gold ring");
}

#[test]
fn starts_with_and_ends_with() {
    let doc = "<l><w>streaming</w><w>dreaming</w><w>stream</w></l>";
    let out = gcx_and_oracle(
        "for $w in /l/w return if (starts-with($w, 'stream')) then <s/> else ()",
        doc,
    );
    assert_eq!(out, "<s/><s/>");
    let out = gcx_and_oracle(
        "for $w in /l/w return if (ends-with($w, 'eaming')) then <e/> else ()",
        doc,
    );
    assert_eq!(out, "<e/><e/>");
}

#[test]
fn contains_on_attributes() {
    let out = gcx_and_oracle(
        "for $p in /s/p return if (contains($p/@id, 'son0')) then $p/@id else ()",
        r#"<s><p id="person0"/><p id="item0"/><p id="person01"/></s>"#,
    );
    assert_eq!(out, "person0person01");
}

#[test]
fn string_fn_existential_over_sequences() {
    // Any (haystack, needle) pair suffices.
    let out = gcx_and_oracle(
        "if (contains(/l/a, /l/n)) then 'y' else 'n'",
        "<l><a>abc</a><a>def</a><n>zz</n><n>de</n></l>",
    );
    assert_eq!(out, "y");
}

#[test]
fn string_fn_in_where_clause() {
    let out = gcx_and_oracle(
        "for $i in /l/i where contains($i, 'x') return $i/text()",
        "<l><i>ax</i><i>b</i><i>cx</i></l>",
    );
    assert_eq!(out, "axcx");
}

#[test]
fn string_fns_roundtrip_through_printer() {
    let src = "for $i in /l/i return if (starts-with($i/name, 'a')) then $i else ()";
    let e = gcx::query::parse(src).unwrap();
    let printed = e.to_string();
    assert_eq!(e, gcx::query::parse(&printed).unwrap(), "{printed}");
}

// ---- aggregation over realistic queries -----------------------------------------

/// Additional XMark adaptations exercising the aggregation extension —
/// closer to the original Q6/Q20 than the paper's fragment allowed.
#[test]
fn q6_with_native_count() {
    let doc = gcx::xmark::generate_string(&gcx::xmark::XmarkConfig::sized(48 * 1024));
    let out = gcx_and_oracle(gcx::xmark::queries::Q6_COUNT, &doc);
    let n: u64 = out
        .trim_start_matches("<count>")
        .trim_end_matches("</count>")
        .parse()
        .expect("count output");
    assert_eq!(n, gcx::xmark::XmarkConfig::sized(48 * 1024).counts().items);
}

#[test]
fn xmark_q5_style_count_with_comparison() {
    // "How many sold items cost more than 40?" — original XMark Q5.
    let doc = "<site><closed_auctions>\
        <closed_auction><price>39.99</price></closed_auction>\
        <closed_auction><price>40.01</price></closed_auction>\
        <closed_auction><price>120.50</price></closed_auction>\
      </closed_auctions></site>";
    let out = gcx_and_oracle(
        "<over40>{ for $i in /site/closed_auctions/closed_auction return \
           if ($i/price >= 40) then <hit/> else () }</over40>",
        doc,
    );
    assert_eq!(out, "<over40><hit/><hit/></over40>");
}

#[test]
fn xmark_q15_style_deep_path() {
    // Q15 navigates a long fixed path; exercises speculative buffering of
    // deep prefixes.
    let doc = "<site><open_auctions><open_auction>\
        <annotation><description><parlist><listitem><parlist><listitem>\
        <text><emph><keyword>deep treasure</keyword></emph></text>\
        </listitem></parlist></listitem></parlist></description></annotation>\
      </open_auction><open_auction><annotation/></open_auction></open_auctions></site>";
    let out = gcx_and_oracle(
        "for $k in /site/open_auctions/open_auction/annotation/description/parlist/\
         listitem/parlist/listitem/text/emph/keyword return <text>{ $k/text() }</text>",
        doc,
    );
    assert_eq!(out, "<text>deep treasure</text>");
}

#[test]
fn xmark_q14_style_text_search() {
    // Q14: items whose description contains a keyword — string predicate
    // over a large subtree value.
    let doc = "<site><regions><asia>\
        <item><name>one</name><description><text>rare gold coin</text></description></item>\
        <item><name>two</name><description><text>plain stone</text></description></item>\
      </asia></regions></site>";
    let out = gcx_and_oracle(
        "for $i in //item return \
           if (contains($i/description, 'gold')) then $i/name else ()",
        doc,
    );
    assert_eq!(out, "<name>one</name>");
}

#[test]
fn aggregates_inside_constructors_per_binding() {
    let out = gcx_and_oracle(
        "for $s in /db/set return <set>{ count($s/v), '/', sum($s/v) }</set>",
        "<db><set><v>1</v><v>2</v></set><set><v>10</v></set></db>",
    );
    assert_eq!(out, "<set>2/3</set><set>1/10</set>");
}

#[test]
fn min_max_avg_against_oracle() {
    let out = gcx_and_oracle(
        "<r>{ min(//v), ' ', max(//v), ' ', avg(//v) }</r>",
        "<l><v>4</v><x><v>10</v></x><v>1</v></l>",
    );
    assert_eq!(out, "<r>1 10 5</r>");
}

#[test]
fn extension_features_refused_nowhere_but_documented() {
    // The aggregation flag is visible on the compiled query, letting
    // downstream users enforce the paper's exact fragment if they choose.
    let q = CompiledQuery::compile("count(/a/b)").unwrap();
    assert!(q.query.uses_aggregates);
    let q = CompiledQuery::compile("for $x in /a return $x").unwrap();
    assert!(!q.query.uses_aggregates);
}

// ---- the extra XMark adaptations, differentially tested -------------------------

#[test]
fn extra_xmark_queries_agree_with_oracle() {
    let doc = gcx::xmark::generate_string(&gcx::xmark::XmarkConfig::sized(64 * 1024));
    for (name, qtext) in gcx::xmark::queries::extra::ALL {
        let q = CompiledQuery::compile(qtext)
            .unwrap_or_else(|e| panic!("{name} does not compile: {e}"));
        let mut out = Vec::new();
        let report = gcx::run(&q, &EngineOptions::gcx(), doc.as_bytes(), &mut out)
            .unwrap_or_else(|e| panic!("{name} failed: {e}"));
        assert_eq!(report.buffer.live, 0, "{name}: buffer must drain");
        let got = String::from_utf8(out).unwrap();
        let oracle = gcx::dom::run_query(qtext, &doc).unwrap();
        assert_eq!(got, oracle, "{name}: gcx vs oracle");
    }
}

#[test]
fn extra_queries_stream_in_constant_space() {
    // All five extras are streaming (no joins): peak must not scale.
    let small = gcx::xmark::generate_string(&gcx::xmark::XmarkConfig::sized(32 * 1024));
    let large = gcx::xmark::generate_string(&gcx::xmark::XmarkConfig::sized(128 * 1024));
    for (name, qtext) in gcx::xmark::queries::extra::ALL {
        let q = CompiledQuery::compile(qtext).unwrap();
        let p_small = gcx::run(&q, &EngineOptions::gcx(), small.as_bytes(), std::io::sink())
            .unwrap()
            .buffer
            .peak_live;
        let p_large = gcx::run(&q, &EngineOptions::gcx(), large.as_bytes(), std::io::sink())
            .unwrap()
            .buffer
            .peak_live;
        assert!(
            p_large <= p_small.max(16) * 2,
            "{name}: peak grew {p_small} -> {p_large} on 4x input"
        );
    }
}
