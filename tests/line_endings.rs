//! XML 1.0 §2.11 line-ending conformance, end to end.
//!
//! On input, `\r\n` and bare `\r` must reach character data (including
//! CDATA) and attribute values as `\n`; characters produced by character
//! references (`&#13;`) are exempt. On output, a CR that legitimately lives
//! in buffered data (it can only get there via `&#13;`) must be re-escaped
//! — a raw CR in serialized output would be destroyed by normalization on
//! re-parse. Together the two rules make CR/CRLF inputs round-trip-stable
//! through tokenizer → buffer → writer, which this suite checks at every
//! layer.

use gcx::xml::{Token, Tokenizer};
use gcx::{CompiledQuery, EngineOptions};

fn run_gcx(query: &str, doc: &str) -> String {
    let q = CompiledQuery::compile(query).unwrap();
    let mut out = Vec::new();
    gcx::run(&q, &EngineOptions::gcx(), doc.as_bytes(), &mut out).expect("engine run");
    String::from_utf8(out).unwrap()
}

fn run_dom(query: &str, doc: &str) -> String {
    let q = gcx::query::compile(query).unwrap();
    let mut out = Vec::new();
    gcx::dom::run(&q, doc.as_bytes(), &mut out).expect("dom run");
    String::from_utf8(out).unwrap()
}

/// Collect (kind, value) pairs of the structural tokens.
fn structural_tokens(doc: &str) -> Vec<(String, String)> {
    let mut t = Tokenizer::from_str(doc);
    let mut out = Vec::new();
    while let Some(tok) = t.next_token().unwrap() {
        match tok {
            Token::StartTag(s) => {
                let attrs: Vec<String> = s
                    .attrs
                    .iter()
                    .map(|a| format!("{}={:?}", a.name, a.value))
                    .collect();
                out.push(("start".into(), format!("{} [{}]", s.name, attrs.join(" "))));
            }
            Token::EndTag { name } => out.push(("end".into(), name.to_string())),
            Token::Text(s) => out.push(("text".into(), s.to_string())),
            _ => {}
        }
    }
    out
}

#[test]
fn crlf_and_cr_normalized_through_the_engine() {
    let doc = "<a x=\"p\r\nq\rr\">line1\r\nline2\rline3</a>";
    let out = run_gcx("for $v in /a return $v", doc);
    // Attribute line breaks become spaces (§2.11 then §3.3.3, as every
    // conformant parser reports them); text CRs normalize to \n and are
    // written verbatim.
    assert_eq!(out, "<a x=\"p q r\">line1\nline2\nline3</a>");
    assert_eq!(
        out,
        run_dom("for $v in /a return $v", doc),
        "dom oracle agrees"
    );
}

#[test]
fn character_reference_cr_round_trips() {
    // &#13; produces a literal CR in the data model (exempt from
    // normalization); serialization must re-escape it, reproducing the
    // input exactly.
    let doc = "<a y=\"c&#13;d\">t&#13;u</a>";
    let out = run_gcx("for $v in /a return $v", doc);
    assert_eq!(out, doc);
}

#[test]
fn cdata_line_endings_normalized() {
    let doc = "<a><![CDATA[x\r\ny\rz]]></a>";
    let out = run_gcx("for $v in /a return $v", doc);
    assert_eq!(out, "<a>x\ny\nz</a>");
}

#[test]
fn string_values_agree_across_line_ending_styles() {
    // The same logical document in LF / CRLF / CR flavors must produce
    // identical query results — CR pollution of string-value comparisons
    // was the bug this guards against.
    let queries = ["for $v in //name return if ($v/text() = 'line1\nline2') then <hit/> else ()"];
    let lf = "<r><name>line1\nline2</name></r>";
    let crlf = "<r><name>line1\r\nline2</name></r>";
    let cr = "<r><name>line1\rline2</name></r>";
    for q in queries {
        let expected = run_gcx(q, lf);
        assert_eq!(expected, "<hit/>", "sanity: LF document matches");
        assert_eq!(run_gcx(q, crlf), expected, "CRLF flavor");
        assert_eq!(run_gcx(q, cr), expected, "CR flavor");
    }
}

#[test]
fn serialized_output_reparses_to_identical_tokens() {
    // Full round-trip stability: parse → serialize → parse must reach a
    // fixpoint for documents containing every line-ending construct.
    let doc = "<a x=\"v\r\n1\" y=\"c&#13;d\">t1\r\nt2\rt3&#13;t4<![CDATA[c\r\nc2]]><b z='\r'/></a>";
    let once = run_gcx("for $v in /a return $v", doc);
    let twice = run_gcx("for $v in /a return $v", &once);
    assert_eq!(once, twice, "serialization must be a fixpoint");
    assert_eq!(
        structural_tokens(&once),
        structural_tokens(&twice),
        "token streams identical"
    );
}
