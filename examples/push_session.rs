//! Sans-IO evaluation: push document bytes into an `EvalSession` as they
//! "arrive" and stream results back out between chunks.
//!
//! ```text
//! cargo run --example push_session
//! ```
//!
//! The engine never sees a `Read` or `Write`: the caller owns both sides.
//! This is the exact shape an async server (or any event loop) uses — on
//! every readable socket event, feed the bytes, drain the output, and let
//! the session carry partial-token spillover across the boundaries.

use gcx::{CompiledQuery, EngineOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let query = CompiledQuery::compile(
        "<books>{ for $b in /bib/book return
             if (exists($b/price)) then $b/title else () }</books>",
    )?;

    let document = "<bib>\
        <book><title>Streaming XQuery</title><price>10</price></book>\
        <article><title>not a book</title></article>\
        <book><title>Buffer Minimization</title><price>12</price></book>\
        <book><title>no price, no output</title></book>\
        </bib>";

    let mut session = query.session(&EngineOptions::gcx());
    let mut result = Vec::new();

    // Simulate network arrival: 24-byte chunks, boundaries landing wherever
    // they land (mid-tag, mid-text — the session does not care).
    for (i, chunk) in document.as_bytes().chunks(24).enumerate() {
        let emitted = session.feed(chunk)?;
        let drained = session.take_output(&mut result)?;
        println!(
            "chunk {i:>2}: fed {:>2} bytes, spillover {:>2}, drained {drained} output bytes{}",
            chunk.len(),
            session.max_pending_bytes(),
            if emitted.done { " (done)" } else { "" },
        );
    }

    let report = session.finish()?;
    session.take_output(&mut result)?;

    println!("\nresult: {}", String::from_utf8_lossy(&result));
    println!(
        "tokens: {}   peak buffered nodes: {}   feed calls: {}   max spillover: {} bytes",
        report.tokens, report.buffer.peak_live, report.feed_calls, report.max_pending_bytes
    );
    assert_eq!(report.buffer.live, 0, "buffer drains to the virtual root");
    Ok(())
}
