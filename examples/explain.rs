//! Static-analysis explorer — the textual version of the demo's
//! Figure 3(a): the mapping between the query, its projection paths/roles,
//! and the signOff preemption points inserted by compile-time rewriting.
//!
//! ```sh
//! cargo run --example explain                 # the paper's running example
//! cargo run --example explain -- Q8           # an XMark query by name
//! cargo run --example explain -- 'for $x in /a/b return $x'
//! ```

use gcx::xmark::queries;
use gcx::CompiledQuery;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arg = std::env::args().nth(1);
    let text: String = match arg.as_deref() {
        None => queries::RUNNING_EXAMPLE.to_string(),
        Some("Q1") => queries::Q1.to_string(),
        Some("Q6") => queries::Q6.to_string(),
        Some("Q8") => queries::Q8.to_string(),
        Some("Q13") => queries::Q13.to_string(),
        Some("Q20") => queries::Q20.to_string(),
        Some(other) => other.to_string(),
    };

    println!("== Input query ==\n{}\n", text.trim());
    let compiled = CompiledQuery::compile(&text)?;
    println!("{}", compiled.explain());

    println!("== signOff anchors ==");
    for role in compiled.analysis.roles.iter() {
        let anchor = match role.anchor {
            gcx::projection::Anchor::Var(v) => {
                format!(
                    "end of ${}'s loop body",
                    compiled.query.var_names[v.index()]
                )
            }
            gcx::projection::Anchor::QueryEnd => "query end".to_string(),
        };
        println!(
            "{}: {:<55} [{}] — signed off at {}",
            role.id,
            role.path_display(),
            role.origin,
            anchor
        );
    }
    Ok(())
}
