//! Quickstart: compile a query, stream a document through GCX, inspect the
//! run report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use gcx::{CompiledQuery, EngineOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small bibliography with mixed children.
    let input = r#"
        <bib>
            <book><title>Streaming XQuery</title><author>K. S.</author></book>
            <article><title>Old News</title><price>5</price></article>
            <book><title>Active GC</title><price>12</price></book>
        </bib>"#;

    // The paper's running example: children of bib without a price, then
    // all book titles.
    let query = CompiledQuery::compile(
        r#"<r> {
             for $bib in /bib return
               (for $x in $bib/* return
                  if (not(exists($x/price))) then $x else (),
                for $b in $bib/book return $b/title)
           } </r>"#,
    )?;

    let mut out = Vec::new();
    let report = gcx::run(
        &query,
        &EngineOptions::gcx().with_timeline(1),
        input.as_bytes(),
        &mut out,
    )?;

    println!("result:\n{}\n", String::from_utf8(out)?);
    println!("tokens processed:     {}", report.tokens);
    println!("nodes ever buffered:  {}", report.buffer.allocated);
    println!("peak buffered nodes:  {}", report.buffer.peak_live);
    println!("nodes purged by GC:   {}", report.buffer.purged);
    println!("buffer at end:        {}", report.buffer.live);
    Ok(())
}
