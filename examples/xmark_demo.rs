//! XMark mini-benchmark: run the paper's queries on a generated document
//! under all four evaluation strategies and compare buffer behaviour.
//!
//! ```sh
//! cargo run --release --example xmark_demo           # ~1MB document
//! cargo run --release --example xmark_demo -- 8      # ~8MB document
//! ```

use gcx::xmark::{generate_string, queries, XmarkConfig};
use gcx::{CompiledQuery, EngineOptions};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mb: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1);
    eprintln!("generating ~{mb}MB XMark-like document ...");
    let doc = generate_string(&XmarkConfig::sized(mb * 1024 * 1024));
    eprintln!("document: {} bytes\n", doc.len());

    println!(
        "{:<5} {:<16} {:>10} {:>12} {:>12} {:>10}",
        "query", "engine", "time", "peak nodes", "purged", "out bytes"
    );
    for (name, text) in queries::FIGURE5_QUERIES {
        let q = CompiledQuery::compile(text)?;
        for (engine, opts) in [
            ("gcx", EngineOptions::gcx()),
            ("projection-only", EngineOptions::projection_only()),
            ("full-buffering", EngineOptions::full_buffering()),
        ] {
            let mut sink = std::io::sink();
            let start = Instant::now();
            let report = gcx::run(&q, &opts, doc.as_bytes(), &mut sink)?;
            let elapsed = start.elapsed();
            println!(
                "{:<5} {:<16} {:>9.2?} {:>12} {:>12} {:>10}",
                name,
                engine,
                elapsed,
                report.buffer.peak_live,
                report.buffer.purged,
                report.output_bytes
            );
        }
        // The DOM baseline (the in-memory engines of Figure 5).
        let start = Instant::now();
        let dom_q = gcx::query::compile(text)?;
        let report = gcx::dom::run(&dom_q, doc.as_bytes(), &mut std::io::sink())?;
        let elapsed = start.elapsed();
        println!(
            "{:<5} {:<16} {:>9.2?} {:>12} {:>12} {:>10}",
            name, "dom-baseline", elapsed, report.nodes, 0, report.output_bytes
        );
        println!();
    }
    Ok(())
}
