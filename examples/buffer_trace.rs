//! Dynamic buffer visualization — the paper's Figures 3(b) and 3(c) as
//! ASCII plots: buffered node count after every token, on the two micro
//! documents (9×article+1×book and 9×book+1×article).
//!
//! Articles are purged one at a time (bounded memory); book titles must be
//! retained for the second loop, so the book-heavy document accumulates
//! buffered nodes until the bib element closes.
//!
//! ```sh
//! cargo run --example buffer_trace
//! ```

use gcx::xmark::{microdoc_article_heavy, microdoc_book_heavy, queries};
use gcx::{CompiledQuery, EngineOptions, Timeline};

fn plot(title: &str, tl: &Timeline) {
    println!("\n{title}");
    let peak = tl.peak().max(1);
    println!("  (y: buffered nodes 0..{peak}, x: tokens processed)");
    // Rows from peak down to 1.
    let height = peak.min(24);
    for row in (1..=height).rev() {
        let threshold = row * peak / height;
        let mut line = String::with_capacity(tl.points.len());
        for &(_, live) in &tl.points {
            line.push(if live >= threshold { '█' } else { ' ' });
        }
        println!("{threshold:4} |{line}");
    }
    let n = tl.points.len();
    println!("     +{}", "-".repeat(n));
    println!("      0{}{}", " ".repeat(n.saturating_sub(7)), n);
}

fn trace(doc: &str) -> Timeline {
    let q = CompiledQuery::compile(queries::RUNNING_EXAMPLE).unwrap();
    let mut sink = Vec::new();
    let report = gcx::run(
        &q,
        &EngineOptions::gcx().with_timeline(1),
        doc.as_bytes(),
        &mut sink,
    )
    .unwrap();
    report.timeline.unwrap()
}

fn main() {
    let a = trace(&microdoc_article_heavy());
    plot("Figure 3(b): 9 x article + 1 x book — bounded buffer", &a);
    println!("peak buffered nodes: {}", a.peak());

    let b = trace(&microdoc_book_heavy());
    plot(
        "Figure 3(c): 9 x book + 1 x article — titles accumulate",
        &b,
    );
    println!("peak buffered nodes: {}", b.peak());
    println!(
        "\nbuffered nodes when </bib> is read (paper: 23): {}",
        b.points
            .iter()
            .rev()
            .find(|&&(t, _)| t == 81)
            .map(|&(_, l)| l)
            .unwrap_or(0)
    );
}
