#![deny(unsafe_code)]
//! # gcx — Dynamic Buffer Minimization in Streaming XQuery Evaluation
//!
//! A Rust reproduction of the **GCX** system (Koch, Scherzinger, Schmidt,
//! VLDB 2007): a main-memory streaming XQuery engine whose buffer manager
//! performs *active garbage collection*. Static analysis derives projection
//! paths (**roles**) from the query and inserts **signOff** statements at
//! preemption points; at runtime, buffered nodes lose role instances as
//! evaluation progresses and are purged the moment they become irrelevant.
//!
//! ## Quickstart
//!
//! ```
//! use gcx::{CompiledQuery, EngineOptions};
//!
//! let query = CompiledQuery::compile(
//!     "<books>{ for $b in /bib/book return $b/title }</books>",
//! ).unwrap();
//!
//! let input = "<bib><book><title>Streams</title><price>10</price></book></bib>";
//! let mut out = Vec::new();
//! let report = gcx::run(&query, &EngineOptions::gcx(), input.as_bytes(), &mut out).unwrap();
//!
//! assert_eq!(out, b"<books><title>Streams</title></books>");
//! assert_eq!(report.buffer.live, 0); // the buffer drained completely
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`xml`] | streaming tokenizer, writer, escaping, interning |
//! | [`query`] | lexer, parser, AST, normalizer for the XQuery fragment |
//! | [`projection`] | roles, projection paths, signOff insertion, stream NFA |
//! | [`ir`] | the lower stage: flat, shareable compiled-query programs |
//! | [`schema`] | DTD model: projection pruning, reachability, sibling-order cutoffs |
//! | [`analyze`] | static streamability classes, buffer-bound lints, shard safety |
//! | [`core`](mod@core) | buffer + active GC, preprojector, program executor, engine |
//! | [`dom`] | full-buffering DOM baseline (differential oracle) |
//! | [`xmark`] | XMark-like generator + the paper's benchmark queries |
//! | [`memtrack`] | heap high-watermark allocator for the experiments |
//!
//! The engine comes in three configurations spanning the paper's comparison
//! axis: [`EngineOptions::gcx`] (projection + active GC),
//! [`EngineOptions::projection_only`] (static projection, no purging) and
//! [`EngineOptions::full_buffering`].
//!
//! ## Sans-IO sessions
//!
//! The engine core performs no I/O of its own: [`run`] is a thin blocking
//! wrapper over the push-driven [`EvalSession`] ([`CompiledQuery::session`]),
//! which accepts document bytes chunk by chunk as they arrive and lets the
//! caller drain output between chunks — see `examples/push_session.rs`.

pub use gcx_core::{
    run, run_query, BufferStats, CompiledQuery, Emitted, EngineError, EngineOptions, EvalSession,
    RunReport, SchemaReport, Timeline,
};

/// The streaming XML substrate (tokenizer, writer, interning).
pub mod xml {
    pub use gcx_xml::*;
}

/// The query frontend (parser, AST, normalizer).
pub mod query {
    pub use gcx_query::*;
}

/// Static analysis (roles, projection paths, signOff insertion).
pub mod projection {
    pub use gcx_projection::*;
}

/// The lower stage: flat, shareable compiled-query programs.
pub mod ir {
    pub use gcx_ir::*;
}

/// DTD model + schema-driven analyses (projection pruning,
/// descendant reachability, sibling-order cutoffs).
pub mod schema {
    pub use gcx_schema::*;
}

/// Static streamability & buffer-bound analysis, lints, shard safety.
pub mod analyze {
    pub use gcx_analyze::*;
}

/// The runtime (buffer, preprojector, evaluator, engine API).
pub mod core {
    pub use gcx_core::*;
}

/// The DOM baseline.
pub mod dom {
    pub use gcx_dom::*;
}

/// Workload generation (XMark-like documents, paper queries).
pub mod xmark {
    pub use gcx_xmark::*;
}

/// Multi-query shared-stream evaluation (one parse, N queries).
pub mod multi {
    pub use gcx_multi::*;
}

/// Partition-parallel evaluation: shard one document across cores.
pub mod par {
    pub use gcx_par::*;
}

/// Heap high-watermark tracking.
pub mod memtrack {
    pub use gcx_memtrack::*;
}
